package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"bbsched/internal/sim"
	"bbsched/internal/trace"
)

// errAbandon aborts the current cell without reporting anything to the
// coordinator — either a simulated crash (StepHook) or a stale lease
// (the coordinator already re-issued the cell to someone else).
var errAbandon = errors.New("farm: abandon cell")

// Worker leases grid cells from a coordinator, runs them to completion —
// resuming from the lease's checkpoint when one is attached — and posts
// periodic checkpoints and final results back.
type Worker struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// ID names this worker in leases and coordinator errors.
	ID string
	// Client is the HTTP client (http.DefaultClient when nil).
	Client *http.Client
	// Poll is the idle backoff between lease attempts when every pending
	// cell is leased elsewhere. Default 50ms.
	Poll time.Duration
	// StepHook, when non-nil, is called after every event instant with
	// the cell index and the number of instants stepped this attempt.
	// Returning an error abandons the cell silently — no failure report,
	// no result — simulating a worker crash or hang so tests can exercise
	// lease-expiry recovery.
	StepHook func(cell, steps int) error
}

// Run leases and executes cells until the coordinator reports the sweep
// drained or ctx is cancelled. Cell-level simulation failures are
// reported to the coordinator (which owns retry policy) and do not stop
// the worker; only transport errors to the coordinator are fatal.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		if err := w.post(ctx, "/lease", LeaseRequest{Worker: w.ID}, &lease); err != nil {
			return err
		}
		if lease.Done {
			return nil
		}
		if lease.Cell < 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(poll):
			}
			continue
		}
		if err := w.runCell(ctx, lease); err != nil {
			if errors.Is(err, errAbandon) {
				continue
			}
			return err
		}
	}
}

// runCell executes one leased cell. Simulation errors are posted as
// failures and return nil; only coordinator-transport errors propagate.
func (w *Worker) runCell(ctx context.Context, lease LeaseResponse) error {
	s, err := w.buildSimulator(lease)
	if err != nil {
		return w.reportFailure(ctx, lease, err)
	}
	// Every exit — result, failure report, abandonment — releases the
	// cell's streaming source exactly once (Close is idempotent and a
	// no-op for materialized cells).
	defer s.Close()
	steps := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		more, err := s.Step()
		if err != nil {
			return w.reportFailure(ctx, lease, err)
		}
		if !more {
			break
		}
		steps++
		if w.StepHook != nil {
			if err := w.StepHook(lease.Cell, steps); err != nil {
				return errAbandon
			}
		}
		if lease.CheckpointEvents > 0 && steps%lease.CheckpointEvents == 0 {
			if err := w.uploadCheckpoint(ctx, lease, s); err != nil {
				return err
			}
		}
	}
	res, err := s.Result()
	if err != nil {
		return w.reportFailure(ctx, lease, err)
	}
	var ack Ack
	if err := w.post(ctx, "/result", ResultMsg{
		Cell: lease.Cell, Attempt: lease.Attempt, Worker: w.ID, Result: res,
	}, &ack); err != nil {
		return err
	}
	return nil
}

// buildSimulator rebuilds the cell's run from its recipe — and from the
// lease's checkpoint when the cell is being resumed.
func (w *Worker) buildSimulator(lease LeaseResponse) (*sim.Simulator, error) {
	cell := lease.Spec
	opts, err := cell.Opts.Options()
	if err != nil {
		return nil, err
	}
	opts = append(opts, sim.WithSeed(cell.Seed))

	var wl trace.Workload
	var src trace.JobSource
	if cell.Workload.Stream {
		shell, opened, err := cell.Workload.Open()
		if err != nil {
			return nil, err
		}
		wl = shell
		src = opened
		opts = append(opts, sim.WithSource(src), sim.WithStreamingMetrics())
	} else {
		built, err := cell.Workload.Build()
		if err != nil {
			return nil, err
		}
		wl = built
	}
	// Until the simulator takes ownership of the opened source, any
	// construction failure closes it here (re-opened fresh next attempt).
	closeSrc := func() {
		if c, ok := src.(trace.Closer); ok {
			c.Close()
		}
	}
	m, err := cell.Method.Build(wl.System.Cluster, cell.Solver)
	if err != nil {
		closeSrc()
		return nil, err
	}
	var s *sim.Simulator
	if len(lease.Checkpoint) > 0 {
		s, err = sim.Restore(wl, m, bytes.NewReader(lease.Checkpoint), opts...)
	} else {
		s, err = sim.NewSimulator(wl, m, opts...)
	}
	if err != nil {
		closeSrc()
		return nil, err
	}
	return s, nil
}

// uploadCheckpoint snapshots the run and posts it; a stale ack means the
// lease was reaped and re-issued, so the cell is abandoned.
func (w *Worker) uploadCheckpoint(ctx context.Context, lease LeaseResponse, s *sim.Simulator) error {
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		return w.reportFailure(ctx, lease, err)
	}
	var ack Ack
	if err := w.post(ctx, "/checkpoint", CheckpointMsg{
		Cell: lease.Cell, Attempt: lease.Attempt, Worker: w.ID, Data: buf.Bytes(),
	}, &ack); err != nil {
		return err
	}
	if ack.Stale {
		return errAbandon
	}
	return nil
}

// reportFailure posts a cell failure and folds the cell into the normal
// lease loop (returns nil, or the transport error).
func (w *Worker) reportFailure(ctx context.Context, lease LeaseResponse, cause error) error {
	var ack Ack
	return w.post(ctx, "/fail", FailMsg{
		Cell: lease.Cell, Attempt: lease.Attempt, Worker: w.ID, Error: cause.Error(),
	}, &ack)
}

// post sends one JSON request to the coordinator and decodes the reply.
func (w *Worker) post(ctx context.Context, path string, msg, reply any) error {
	body, err := json.Marshal(msg)
	if err != nil {
		return fmt.Errorf("farm: encoding %s: %w", path, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("farm: %s: %w", path, err)
	}
	req.Header.Set("Content-Type", "application/json")
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("farm: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("farm: %s: coordinator returned %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(reply); err != nil {
		return fmt.Errorf("farm: decoding %s reply: %w", path, err)
	}
	return nil
}
