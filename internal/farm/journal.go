package farm

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// The coordinator journal is an append-only JSONL cell-state log that
// lets the coordinator itself crash and resume: completed cells and
// finished relay segments are recorded as they are accepted, and a new
// coordinator constructed over the same grid and journal path replays
// them before leasing anything, so a restarted sweep recomputes only the
// cells that were genuinely in flight.
//
// Only terminal state is journaled — results and relay-segment boundary
// snapshots — never mid-run checkpoints, so the file grows with completed
// work, not with checkpoint cadence. The first record pins the SHA-256 of
// the grid; replaying a journal against a different grid is an error, not
// a silent mismatch.

// journalRec is one JSONL record.
type journalRec struct {
	// Kind discriminates: "grid" (header), "result", "segment".
	Kind string `json:"kind"`
	// GridSHA pins the grid on the header record.
	GridSHA string `json:"grid_sha,omitempty"`
	// Cell is the grid-order cell index for result/segment records.
	Cell int `json:"cell"`
	// Result carries a completed cell's result.
	Result json.RawMessage `json:"result,omitempty"`
	// SegDone and Checkpoint carry a relay cell's completed-segment count
	// and the terminal snapshot the next segment resumes from.
	SegDone    int    `json:"seg_done,omitempty"`
	Checkpoint []byte `json:"checkpoint,omitempty"`
}

// journal is the open append handle. Appends happen under the
// coordinator's mutex, so it needs no locking of its own.
type journal struct {
	f   *os.File
	enc *json.Encoder
}

// gridSHA is the canonical grid identity the journal header pins.
func gridSHA(g Grid) string {
	data, _ := json.Marshal(g)
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// openJournal opens (or creates) the journal at path for the grid with
// the given SHA, returning the replayable records of a previous run. A
// partial trailing line — the signature of a crash mid-append — is
// dropped and truncated away; a corrupt record anywhere earlier is an
// error.
func openJournal(path, sha string) (*journal, []journalRec, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("farm: journal: %w", err)
	}
	var recs []journalRec
	valid := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			// Unterminated tail: a crash interrupted the last append.
			break
		}
		line := data[:nl]
		data = data[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			valid += nl + 1
			continue
		}
		var rec journalRec
		if err := json.Unmarshal(line, &rec); err != nil {
			if len(data) == 0 {
				break // corrupt final line: same crash signature, drop it
			}
			return nil, nil, fmt.Errorf("farm: journal %s: corrupt record %d: %w", path, len(recs)+1, err)
		}
		if len(recs) == 0 {
			if rec.Kind != "grid" {
				return nil, nil, fmt.Errorf("farm: journal %s: missing grid header", path)
			}
			if rec.GridSHA != sha {
				return nil, nil, fmt.Errorf("farm: journal %s: grid mismatch (journal %s, grid %s) — the journal belongs to a different sweep", path, rec.GridSHA[:12], sha[:12])
			}
		}
		recs = append(recs, rec)
		valid += nl + 1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("farm: journal: %w", err)
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("farm: journal: %w", err)
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("farm: journal: %w", err)
	}
	j := &journal{f: f, enc: json.NewEncoder(f)}
	if len(recs) == 0 {
		if err := j.append(journalRec{Kind: "grid", GridSHA: sha}); err != nil {
			f.Close()
			return nil, nil, err
		}
	} else {
		recs = recs[1:] // header consumed
	}
	return j, recs, nil
}

// append writes one record and syncs it to disk before the accept that
// triggered it is acknowledged.
func (j *journal) append(rec journalRec) error {
	if err := j.enc.Encode(rec); err != nil {
		return fmt.Errorf("farm: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("farm: journal sync: %w", err)
	}
	return nil
}

// Close releases the journal file.
func (j *journal) close() error { return j.f.Close() }
