package farm

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bbsched/internal/moo"
	"bbsched/internal/sched"
	"bbsched/internal/sim"
	"bbsched/internal/trace"
)

func testGA() moo.GAConfig {
	return moo.GAConfig{Generations: 8, Population: 6, MutationProb: 0.0005}
}

// testGrid is the smoke grid: one materialized workload (with an S2
// variant applied) and one stream-backed workload, swept under three
// methods — Baseline, Bin_Packing, and a down-sized BBSched — for one
// seed each: 6 cells.
func testGrid() Grid {
	sys := trace.Scale(trace.Cori(), 128)
	return Grid{
		Workloads: []WorkloadSpec{
			{Name: "farm-mat", Gen: trace.GenConfig{System: sys, Jobs: 40, Seed: 5}, Variant: "S2", VariantSeed: 11},
			{Name: "farm-stream", Gen: trace.GenConfig{System: sys, Jobs: 50, Seed: 6}, Stream: true},
		},
		Methods: []MethodSpec{
			{Name: "Baseline", GA: testGA()},
			{Name: "Bin_Packing", GA: testGA()},
			{Name: "BBSched", GA: testGA()},
		},
		Seeds:            []uint64{3},
		Opts:             RunOptions{Window: 5, StarvationBound: 50, Measure: "full"},
		CheckpointEvents: 5,
	}
}

// serialReference runs the grid's cells through sim.RunSweep on one
// worker — the ground truth the farm must reproduce bit-for-bit.
func serialReference(t *testing.T, g Grid) []sim.SweepRun {
	t.Helper()
	var mats []trace.Workload
	var streams []sim.StreamWorkload
	for _, ws := range g.Workloads {
		if ws.Stream {
			spec := ws
			streams = append(streams, sim.StreamWorkload{
				Name:   spec.Name,
				System: spec.Gen.System,
				Open: func() (trace.JobSource, error) {
					_, src, err := spec.Open()
					return src, err
				},
			})
			continue
		}
		w, err := ws.Build()
		if err != nil {
			t.Fatal(err)
		}
		mats = append(mats, w)
	}
	sw := sim.Sweep{
		Workloads: mats,
		Streams:   streams,
		Seeds:     g.Seeds,
		Options:   []sim.Option{sim.WithWindow(g.Opts.Window, g.Opts.StarvationBound), sim.WithMeasurement(0, 0)},
		Workers:   1,
		// Stream cells run under streaming metrics, exactly as a farm
		// worker runs them.
		PerRun: func(w trace.Workload, m sched.Method, seed uint64) []sim.Option {
			if isStreamCell(g, w.Name) {
				return []sim.Option{sim.WithStreamingMetrics()}
			}
			return nil
		},
	}
	// The farm sweeps methods per workload with fresh instances; shipped
	// methods are stateless across runs, so shared instances match.
	cfg := g.Workloads[0].Gen.System.Cluster
	for _, ms := range g.Methods {
		m, err := ms.Build(cfg, "")
		if err != nil {
			t.Fatal(err)
		}
		sw.Methods = append(sw.Methods, m)
	}
	runs, err := sim.RunSweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

func isStreamCell(g Grid, workload string) bool {
	for _, ws := range g.Workloads {
		if ws.Stream && ws.Name == workload {
			return true
		}
	}
	return false
}

// compareRuns asserts the farm's assembled grid equals the serial
// reference cell-for-cell: identity, Report, and the deterministic
// Result fields. Wall-clock decision times are legitimately different.
func compareRuns(t *testing.T, got, want []sim.SweepRun) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("grid length %d, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Workload != w.Workload || g.Method != w.Method || g.Seed != w.Seed {
			t.Fatalf("cell %d identity %s/%s/%d, want %s/%s/%d",
				i, g.Workload, g.Method, g.Seed, w.Workload, w.Method, w.Seed)
		}
		if g.Canceled {
			t.Fatalf("cell %d (%s/%s) marked Canceled in a completed sweep", i, g.Workload, g.Method)
		}
		if g.Result == nil {
			t.Fatalf("cell %d (%s/%s) has no Result", i, g.Workload, g.Method)
		}
		if !reflect.DeepEqual(g.Result.Report, w.Result.Report) {
			t.Errorf("cell %d (%s/%s/seed %d): farm Report differs from serial sweep:\nfarm:   %+v\nserial: %+v",
				i, g.Workload, g.Method, g.Seed, g.Result.Report, w.Result.Report)
		}
		if g.Result.TotalJobs != w.Result.TotalJobs ||
			g.Result.MeasuredJobs != w.Result.MeasuredJobs ||
			g.Result.SchedInvocations != w.Result.SchedInvocations ||
			g.Result.MakespanSec != w.Result.MakespanSec {
			t.Errorf("cell %d (%s/%s): deterministic counters differ: farm {jobs %d/%d inv %d mk %d}, serial {jobs %d/%d inv %d mk %d}",
				i, g.Workload, g.Method,
				g.Result.TotalJobs, g.Result.MeasuredJobs, g.Result.SchedInvocations, g.Result.MakespanSec,
				w.Result.TotalJobs, w.Result.MeasuredJobs, w.Result.SchedInvocations, w.Result.MakespanSec)
		}
	}
}

// TestFarmSweepWithFaultInjection is the farm's equivalence contract
// under failure: three workers sweep the grid while two injected crashes
// kill a worker mid-cell — once before any checkpoint (the retry
// restarts from scratch) and once past an uploaded checkpoint (the retry
// resumes from the snapshot). The assembled grid must be identical to a
// serial sim.RunSweep over the same cells.
func TestFarmSweepWithFaultInjection(t *testing.T) {
	g := testGrid()
	want := serialReference(t, g)

	// Speculation off: this test pins the lease-expiry recovery path, and
	// a speculative twin would legitimately rescue a crashed cell before
	// its lease expires (TestFarmStragglerSpeculation covers that path).
	coord, err := NewCoordinator(g, WithLeaseTTL(400*time.Millisecond), WithSpeculation(false))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Two one-shot crashes, triggered by global step counts: the first
	// fires before the cell's first checkpoint (CheckpointEvents=5), the
	// second after two checkpoints have been uploaded.
	var crashEarly, crashLate atomic.Bool
	hook := func(cell, steps int) error {
		if steps == 2 && crashEarly.CompareAndSwap(false, true) {
			return errors.New("injected crash before first checkpoint")
		}
		if steps == 12 && crashLate.CompareAndSwap(false, true) {
			return errors.New("injected crash past checkpoint")
		}
		return nil
	}

	var wg sync.WaitGroup
	workerErrs := make([]error, 3)
	for i := range workerErrs {
		w := &Worker{
			Coordinator: srv.URL,
			ID:          []string{"w1", "w2", "w3"}[i],
			Poll:        20 * time.Millisecond,
			StepHook:    hook,
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			workerErrs[i] = w.Run(context.Background())
		}(i)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	got, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	wg.Wait()
	for i, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("worker %d: %v", i, werr)
		}
	}

	if !crashEarly.Load() || !crashLate.Load() {
		t.Fatalf("crash injection incomplete: early=%v late=%v", crashEarly.Load(), crashLate.Load())
	}
	st := coord.Stats()
	if st.Retries < 2 {
		t.Errorf("Retries = %d, want >= 2 (both crashed cells re-leased)", st.Retries)
	}
	if st.Resumes < 1 {
		t.Errorf("Resumes = %d, want >= 1 (post-checkpoint crash must resume from the snapshot)", st.Resumes)
	}
	if st.Expired < 2 {
		t.Errorf("Expired = %d, want >= 2 (silent crashes are caught by lease expiry)", st.Expired)
	}

	compareRuns(t, got, want)
}

// TestFarmSingleWorkerMatchesSerial: the no-failure path with one
// worker — equivalence must hold for any worker count.
func TestFarmSingleWorkerMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection smoke covers the farm in -short")
	}
	g := testGrid()
	g.CheckpointEvents = 0 // no mid-run snapshots either
	want := serialReference(t, g)

	coord, err := NewCoordinator(g)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		w := &Worker{Coordinator: srv.URL, ID: "solo"}
		done <- w.Run(context.Background())
	}()
	got, err := coord.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatal(werr)
	}
	compareRuns(t, got, want)
}

// TestFarmWaitCancellationDrains: cancelling Wait returns the full grid
// in grid order with unfinished cells marked Canceled — mirroring
// sim.RunSweep's drain contract.
func TestFarmWaitCancellationDrains(t *testing.T) {
	g := testGrid()
	coord, err := NewCoordinator(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs, err := coord.Wait(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Wait returned %v", err)
	}
	if len(runs) != len(g.Cells()) {
		t.Fatalf("cancelled Wait returned %d cells, want the full %d-cell grid", len(runs), len(g.Cells()))
	}
	for i, r := range runs {
		if !r.Canceled || r.Result != nil {
			t.Errorf("cell %d: Canceled=%v Result=%v, want a bare cancellation marker", i, r.Canceled, r.Result)
		}
		if r.Workload == "" || r.Method == "" {
			t.Errorf("cell %d lost its identity: %+v", i, r)
		}
	}
}

// TestFarmStaleAttemptsRejected: messages from a reaped attempt must not
// corrupt the re-issued attempt's state.
func TestFarmStaleAttemptsRejected(t *testing.T) {
	g := testGrid()
	coord, err := NewCoordinator(g, WithLeaseTTL(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	lease := coord.lease("w1")
	if lease.Cell != 0 || lease.Attempt != 1 {
		t.Fatalf("first lease = cell %d attempt %d, want cell 0 attempt 1", lease.Cell, lease.Attempt)
	}
	// The worker dies; the coordinator reaps and re-issues.
	coord.mu.Lock()
	coord.cells[0].leases[0].deadline = time.Now().Add(-time.Second)
	coord.mu.Unlock()
	lease2 := coord.lease("w2")
	if lease2.Cell != 0 || lease2.Attempt != 2 {
		t.Fatalf("re-lease = cell %d attempt %d, want cell 0 attempt 2", lease2.Cell, lease2.Attempt)
	}
	if coord.Stats().Expired != 1 || coord.Stats().Retries != 1 {
		t.Fatalf("stats after reap: %+v", coord.Stats())
	}
	// Attempt 1's messages are all stale now.
	if coord.acceptCheckpoint(CheckpointMsg{Cell: 0, Attempt: 1, Data: []byte("x")}) {
		t.Error("stale checkpoint accepted")
	}
	if coord.acceptResult(ResultMsg{Cell: 0, Attempt: 1, Result: &sim.Result{}}) {
		t.Error("stale result accepted")
	}
	if coord.acceptFailure(FailMsg{Cell: 0, Attempt: 1, Error: "boom"}) {
		t.Error("stale failure accepted")
	}
	// Attempt 2's are live.
	if !coord.acceptCheckpoint(CheckpointMsg{Cell: 0, Attempt: 2, Data: []byte("y")}) {
		t.Error("live checkpoint rejected")
	}
	if !coord.acceptResult(ResultMsg{Cell: 0, Attempt: 2, Result: &sim.Result{}}) {
		t.Error("live result rejected")
	}
}

// TestFarmExhaustedAttemptsFailSweep: a cell that keeps failing takes
// the sweep down with a descriptive error after MaxAttempts, and the
// assembled grid still carries every cell's identity.
func TestFarmExhaustedAttemptsFailSweep(t *testing.T) {
	g := testGrid()
	coord, err := NewCoordinator(g, WithMaxAttempts(2), WithLeaseTTL(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 1; attempt <= 2; attempt++ {
		lease := coord.lease("w1")
		if lease.Cell != 0 {
			t.Fatalf("attempt %d leased cell %d", attempt, lease.Cell)
		}
		if !coord.acceptFailure(FailMsg{Cell: 0, Attempt: lease.Attempt, Worker: "w1", Error: "boom"}) {
			t.Fatalf("attempt %d failure rejected", attempt)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	runs, err := coord.Wait(ctx)
	if err == nil {
		t.Fatal("exhausted cell did not fail the sweep")
	}
	for _, want := range []string{"farm-mat", "Baseline", "boom", "2 attempts"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if len(runs) != len(g.Cells()) {
		t.Fatalf("failed sweep returned %d cells, want %d", len(runs), len(g.Cells()))
	}
}

// TestFarmSkippedCells: an incompatible method×solver pairing is a legal
// grid — Validate accepts it, the coordinator marks its cells skipped up
// front, workers sweep only the compatible cells, and the assembled grid
// carries the skip markers in grid order.
func TestFarmSkippedCells(t *testing.T) {
	sys := trace.Scale(trace.Cori(), 128)
	g := Grid{
		Workloads: []WorkloadSpec{
			{Name: "skip-mat", Gen: trace.GenConfig{System: sys, Jobs: 40, Seed: 5}},
		},
		// Baseline is a fixed heuristic: Baseline×lp can never run. The
		// solver-configurable Constrained_CPU sweeps under lp normally.
		Methods: []MethodSpec{
			{Name: "Baseline", GA: testGA()},
			{Name: "Constrained_CPU", GA: testGA()},
		},
		Solvers: []string{"lp"},
		Seeds:   []uint64{3, 4},
		Opts:    RunOptions{Window: 5, StarvationBound: 50, Measure: "full"},
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("grid with an incompatible pairing rejected: %v", err)
	}

	coord, err := NewCoordinator(g)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		w := &Worker{Coordinator: srv.URL, ID: "solo"}
		done <- w.Run(context.Background())
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	runs, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if werr := <-done; werr != nil {
		t.Fatal(werr)
	}

	if len(runs) != 4 {
		t.Fatalf("assembled %d cells, want 4", len(runs))
	}
	// Grid order: Baseline×lp (both seeds), then Constrained_CPU×lp.
	for i, r := range runs[:2] {
		if !r.Skipped || r.Canceled || r.Result != nil {
			t.Errorf("cell %d (%s/%s): Skipped=%v Canceled=%v Result=%v, want a bare skip marker",
				i, r.Workload, r.Method, r.Skipped, r.Canceled, r.Result)
		}
		if r.Workload != "skip-mat" || r.Method != "Baseline" {
			t.Errorf("cell %d lost its identity: %+v", i, r)
		}
	}
	for i, r := range runs[2:] {
		if r.Skipped || r.Canceled || r.Result == nil {
			t.Errorf("cell %d (%s/%s): Skipped=%v Canceled=%v Result=%v, want a completed run",
				i+2, r.Workload, r.Method, r.Skipped, r.Canceled, r.Result)
		}
	}
}

// TestFarmAllCellsSkipped: a grid whose every pairing is incompatible
// drains at construction — Wait returns the skip markers immediately,
// without any worker.
func TestFarmAllCellsSkipped(t *testing.T) {
	sys := trace.Scale(trace.Cori(), 128)
	g := Grid{
		Workloads: []WorkloadSpec{
			{Name: "skip-all", Gen: trace.GenConfig{System: sys, Jobs: 10, Seed: 1}},
		},
		Methods: []MethodSpec{{Name: "Baseline", GA: testGA()}},
		Solvers: []string{"greedy"},
		Seeds:   []uint64{1},
		Opts:    RunOptions{Measure: "full"},
	}
	coord, err := NewCoordinator(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	runs, err := coord.Wait(ctx)
	if err != nil {
		t.Fatalf("all-skipped sweep returned %v, want immediate drain", err)
	}
	if len(runs) != 1 || !runs[0].Skipped {
		t.Fatalf("runs = %+v, want one skipped cell", runs)
	}
	// A late worker sees the sweep as done.
	lease := coord.lease("late")
	if !lease.Done {
		t.Fatalf("lease on a drained sweep = %+v, want Done", lease)
	}
}

// TestFarmGridValidation rejects malformed grids at submission.
func TestFarmGridValidation(t *testing.T) {
	base := testGrid()
	mutate := func(f func(*Grid)) Grid {
		g := testGrid()
		f(&g)
		return g
	}
	cases := map[string]Grid{
		"no workloads":   mutate(func(g *Grid) { g.Workloads = nil }),
		"no methods":     mutate(func(g *Grid) { g.Methods = nil }),
		"no seeds":       mutate(func(g *Grid) { g.Seeds = nil }),
		"zero jobs":      mutate(func(g *Grid) { g.Workloads[0].Gen.Jobs = 0 }),
		"bad variant":    mutate(func(g *Grid) { g.Workloads[0].Variant = "S99" }),
		"bad measure":    mutate(func(g *Grid) { g.Opts.Measure = "sideways" }),
		"stream horizon": mutate(func(g *Grid) { g.Opts.Measure = "" }),
		"unknown method": mutate(func(g *Grid) { g.Methods[0].Name = "Nope" }),
		"unknown solver": mutate(func(g *Grid) { g.Solvers = []string{"simplex9000"} }),
	}
	for name, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
	if n := len(base.Cells()); n != 6 {
		t.Errorf("grid has %d cells, want 6", n)
	}
}
