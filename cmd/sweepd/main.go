// Command sweepd is the distributed sweep farm: a coordinator that
// shards a workloads × methods × solvers × seeds grid onto workers over
// HTTP/JSON, and the worker that executes leased cells — resuming from
// the coordinator's last stored checkpoint after a failure.
//
// The grid is a JSON farm.Grid (see -print-grid for a template). Every
// cell ships as a recipe, never as a job table, and every run is
// deterministic in its cell, so results assemble in grid order identical
// to a serial in-process sweep no matter how many workers join, leave,
// or crash.
//
// Coordinator (also runs -workers local workers when asked):
//
//	sweepd -grid grid.json -addr :8080 -workers 4 -out results.json
//
// Extra workers, on any machine that can reach the coordinator:
//
//	sweepd -coordinator http://host:8080 -id worker-7
//
// Interrupting the coordinator (SIGINT/SIGTERM) drains: the results file
// still spans the full grid, completed cells keep their Reports, and
// unfinished cells are marked canceled for resubmission.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"bbsched/internal/farm"
	"bbsched/internal/moo"
	"bbsched/internal/trace"
)

func main() {
	var (
		gridPath    = flag.String("grid", "", "grid JSON file (coordinator mode)")
		addr        = flag.String("addr", "127.0.0.1:8080", "coordinator listen address")
		out         = flag.String("out", "", "results JSON file (default stdout)")
		workers     = flag.Int("workers", 0, "in-process workers to run alongside the coordinator")
		leaseTTL    = flag.Duration("lease-ttl", 60*time.Second, "worker lease duration; checkpoint uploads renew it")
		maxAttempts = flag.Int("max-attempts", 3, "failed attempts per cell before the sweep fails")
		coordinator = flag.String("coordinator", "", "coordinator URL (worker mode)")
		id          = flag.String("id", "", "worker name (worker mode; default host:pid)")
		cacheDir    = flag.String("cache", "", "content-addressed result cache directory (workers answer repeat cells without simulating)")
		journal     = flag.String("journal", "", "coordinator journal file: completed cells and relay segments are logged and replayed on restart")
		steal       = flag.Bool("steal", true, "speculative tail work-stealing: duplicate in-flight leases onto idle workers")
		printGrid   = flag.Bool("print-grid", false, "print a grid template and exit")
	)
	flag.Parse()

	if *printGrid {
		emitTemplate()
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch {
	case *coordinator != "":
		err = runWorker(ctx, *coordinator, *id, *cacheDir)
	case *gridPath != "":
		err = runCoordinator(ctx, *gridPath, *addr, *out, *workers, *leaseTTL, *maxAttempts, *cacheDir, *journal, *steal)
	default:
		err = fmt.Errorf("need -grid (coordinator mode) or -coordinator (worker mode); see -h")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

func runCoordinator(ctx context.Context, gridPath, addr, out string, workers int, ttl time.Duration, attempts int, cacheDir, journal string, steal bool) error {
	raw, err := os.ReadFile(gridPath)
	if err != nil {
		return err
	}
	var grid farm.Grid
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&grid); err != nil {
		return fmt.Errorf("parsing %s: %w", gridPath, err)
	}
	copts := []farm.CoordinatorOption{
		farm.WithLeaseTTL(ttl),
		farm.WithMaxAttempts(attempts),
		farm.WithSpeculation(steal),
	}
	if journal != "" {
		copts = append(copts, farm.WithJournal(journal))
	}
	coord, err := farm.NewCoordinator(grid, copts...)
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "sweepd: coordinating %d cells on %s\n", len(grid.Cells()), ln.Addr())

	workerCtx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	var wg sync.WaitGroup
	for i := range workers {
		w := &farm.Worker{Coordinator: "http://" + ln.Addr().String(), ID: fmt.Sprintf("local-%d", i), CacheDir: cacheDir}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(workerCtx); err != nil && workerCtx.Err() == nil {
				fmt.Fprintf(os.Stderr, "sweepd: worker %s: %v\n", w.ID, err)
			}
		}()
	}

	runs, sweepErr := coord.Wait(ctx)
	stopWorkers()
	wg.Wait()

	blob, err := json.MarshalIndent(runs, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	done, total := coord.Progress()
	fmt.Fprintf(os.Stderr, "sweepd: %d/%d cells completed (stats %+v)\n", done, total, coord.Stats())
	return sweepErr
}

func runWorker(ctx context.Context, url, id, cacheDir string) error {
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := &farm.Worker{Coordinator: url, ID: id, CacheDir: cacheDir}
	err := w.Run(ctx)
	fmt.Fprintf(os.Stderr, "sweepd: worker %s stats %+v\n", id, w.Stats())
	if ctx.Err() != nil {
		return nil // interrupted: abandoned leases expire and get retried
	}
	return err
}

// emitTemplate prints a small runnable grid as a starting point.
func emitTemplate() {
	sys := trace.Scale(trace.Cori(), 64)
	grid := farm.Grid{
		Workloads: []farm.WorkloadSpec{
			{Name: "cori-s2", Gen: trace.GenConfig{System: sys, Jobs: 200, Seed: 42}, Variant: "S2", VariantSeed: 42},
		},
		Methods: []farm.MethodSpec{
			{Name: "Baseline"},
			{Name: "BBSched", GA: moo.GAConfig{Generations: 60, Population: 12, MutationProb: 0.0005}},
		},
		Seeds:            []uint64{1, 2, 3},
		Opts:             farm.RunOptions{Window: 20, StarvationBound: 50},
		CheckpointEvents: 200,
	}
	blob, _ := json.MarshalIndent(grid, "", "  ")
	fmt.Println(string(blob))
}
