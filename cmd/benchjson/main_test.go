package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: bbsched/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimThroughput-8          	       3	3244015706 ns/op	       168.8 B/event	         1.413 allocs/event	      6165 jobs/sec	 6750130 B/op	   56533 allocs/op
BenchmarkSimThroughputReference-8 	       3	21915984978 ns/op	     81252 B/event	      1437 allocs/event	       912.6 jobs/sec	3250062386 B/op	57467801 allocs/op
PASS
ok  	bbsched/internal/sim	100.286s
`

func parseSample(t *testing.T, s string) *File {
	t.Helper()
	f, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParse(t *testing.T) {
	f := parseSample(t, sampleOutput)
	if len(f.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(f.Benchmarks))
	}
	// Sorted by name: SimThroughput before SimThroughputReference.
	b := f.Benchmarks[0]
	if b.Name != "BenchmarkSimThroughput" {
		t.Fatalf("name = %q (cpu suffix should be stripped)", b.Name)
	}
	if b.Iters != 3 {
		t.Fatalf("iters = %d, want 3", b.Iters)
	}
	for unit, want := range map[string]float64{
		"ns/op":        3244015706,
		"B/event":      168.8,
		"allocs/event": 1.413,
		"jobs/sec":     6165,
		"allocs/op":    56533,
	} {
		if got := b.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
	if f.Host == "" || !strings.Contains(f.Host, "Xeon") {
		t.Errorf("host not captured: %q", f.Host)
	}
	if f.GoMaxProcs != 8 {
		t.Errorf("gomaxprocs = %d, want 8 (from the -8 name suffix)", f.GoMaxProcs)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX 3 12 ns/op trailing\n")); err == nil {
		t.Fatal("odd field count accepted")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX notanint 12 ns/op\n")); err == nil {
		t.Fatal("bad iteration count accepted")
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	base := parseSample(t, sampleOutput)
	cur := parseSample(t, strings.ReplaceAll(sampleOutput, "6165 jobs/sec", "5200 jobs/sec"))
	report, ok := Compare(base, cur, 0.20)
	if !ok {
		t.Fatalf("15%% drop within a 20%% threshold should pass:\n%s", report)
	}
}

func TestCompareFailsOnRateRegression(t *testing.T) {
	base := parseSample(t, sampleOutput)
	cur := parseSample(t, strings.ReplaceAll(sampleOutput, "6165 jobs/sec", "4000 jobs/sec"))
	report, ok := Compare(base, cur, 0.20)
	if ok {
		t.Fatalf("35%% jobs/sec drop should fail:\n%s", report)
	}
	if !strings.Contains(report, "FAIL") {
		t.Fatalf("report should flag the failure:\n%s", report)
	}
}

func TestCompareFailsOnAllocRegression(t *testing.T) {
	base := parseSample(t, sampleOutput)
	cur := parseSample(t, strings.ReplaceAll(sampleOutput, "1.413 allocs/event", "14.13 allocs/event"))
	if report, ok := Compare(base, cur, 0.20); ok {
		t.Fatalf("10x allocs/event growth should fail:\n%s", report)
	}
}

func TestCompareIgnoresInformationalMetrics(t *testing.T) {
	base := parseSample(t, sampleOutput)
	// ns/op doubles (machine-speed-sensitive) but the gated metrics hold:
	// the check reports it without failing.
	cur := parseSample(t, strings.ReplaceAll(sampleOutput, "3244015706 ns/op", "6488031412 ns/op"))
	report, ok := Compare(base, cur, 0.20)
	if !ok {
		t.Fatalf("ungated ns/op regression should not fail the check:\n%s", report)
	}
	if !strings.Contains(report, "informational") {
		t.Fatalf("ns/op regression should still be reported:\n%s", report)
	}
}

func TestCompareNewBenchmark(t *testing.T) {
	base := parseSample(t, sampleOutput)
	cur := parseSample(t, sampleOutput+"BenchmarkBrandNew-8 1 5 ns/op\n")
	report, ok := Compare(base, cur, 0.20)
	if !ok {
		t.Fatalf("unknown benchmark must not fail the check:\n%s", report)
	}
	if !strings.Contains(report, "no baseline") {
		t.Fatalf("new benchmark should be called out:\n%s", report)
	}
}

func TestCompareFailsOnMissingGatedMetric(t *testing.T) {
	base := parseSample(t, sampleOutput)
	// The current run stops reporting jobs/sec entirely: the gate must
	// fail loudly rather than silently skipping the check.
	cur := parseSample(t, strings.ReplaceAll(sampleOutput, "6165 jobs/sec\t", ""))
	report, ok := Compare(base, cur, 0.20)
	if ok {
		t.Fatalf("missing gated metric should fail the check:\n%s", report)
	}
	if !strings.Contains(report, "missing from current run") {
		t.Fatalf("report should name the missing metric:\n%s", report)
	}
}

const multiPkgOutput = `goos: linux
pkg: bbsched/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimThroughput-8 	3	3244015706 ns/op	6165 jobs/sec
PASS
ok  	bbsched/internal/sim	10.2s
goos: linux
pkg: bbsched/internal/lp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSolveLP/w=64-8 	100	100000 ns/op	9400 solves/sec
PASS
ok  	bbsched/internal/lp	2.1s
`

// TestParseMultiPackage checks per-benchmark package attribution on
// concatenated bench output: the combined-run case bench-json produces.
func TestParseMultiPackage(t *testing.T) {
	f := parseSample(t, multiPkgOutput)
	if f.Pkg != "" {
		t.Errorf("top-level Pkg = %q for a multi-package run, want empty", f.Pkg)
	}
	want := map[string]string{
		"BenchmarkSimThroughput": "bbsched/internal/sim",
		"BenchmarkSolveLP/w=64":  "bbsched/internal/lp",
	}
	for _, b := range f.Benchmarks {
		if b.Pkg != want[b.Name] {
			t.Errorf("%s attributed to %q, want %q", b.Name, b.Pkg, want[b.Name])
		}
	}
}

// TestParseSinglePackageKeepsTopLevelPkg pins backward compatibility:
// one-package runs keep the File.Pkg field and omit per-benchmark Pkg.
func TestParseSinglePackageKeepsTopLevelPkg(t *testing.T) {
	f := parseSample(t, sampleOutput)
	if f.Pkg != "bbsched/internal/sim" {
		t.Errorf("Pkg = %q, want bbsched/internal/sim", f.Pkg)
	}
	for _, b := range f.Benchmarks {
		if b.Pkg != "" {
			t.Errorf("%s carries per-benchmark Pkg %q in a single-package run", b.Name, b.Pkg)
		}
	}
}

// TestMissingRequired checks the -require presence gate: a benchmark
// family that vanished from the run (its package failed) must be
// reported, matching by name prefix.
func TestMissingRequired(t *testing.T) {
	f := parseSample(t, multiPkgOutput)
	if missing := missingRequired(f, "BenchmarkSimThroughput,BenchmarkSolveLP/"); len(missing) != 0 {
		t.Errorf("false positives: %v", missing)
	}
	missing := missingRequired(f, "BenchmarkSolveGA/, BenchmarkSolveLP/ ,BenchmarkSolveGAWindow/")
	if len(missing) != 2 || missing[0] != "BenchmarkSolveGA/" || missing[1] != "BenchmarkSolveGAWindow/" {
		t.Errorf("missing = %v, want [BenchmarkSolveGA/ BenchmarkSolveGAWindow/]", missing)
	}
	if missing := missingRequired(f, ""); missing != nil {
		t.Errorf("empty require produced %v", missing)
	}
}
