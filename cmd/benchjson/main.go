// Command benchjson turns `go test -bench` output into a committed JSON
// perf trajectory and gates CI on it.
//
// Two modes:
//
//	# parse bench output from stdin and write/refresh the baseline
//	go test -bench '^BenchmarkSimThroughput$' -benchtime=3x -run '^$' ./internal/sim | \
//	    go run ./cmd/benchjson -out BENCH_sim.json
//
//	# parse a fresh run from stdin and fail if it regressed vs the baseline
//	go test -bench '^BenchmarkSimThroughput$' -benchtime=3x -run '^$' ./internal/sim | \
//	    go run ./cmd/benchjson -check BENCH_sim.json -max-regress 0.2
//
// The check compares every benchmark present in both runs: jobs/sec (and
// any other higher-is-better rate metric) must not drop more than
// -max-regress relative to the baseline, and allocs/event — which is
// machine-independent, so it gates reliably even when CI hardware differs
// from the machine that produced the baseline — must not grow more than
// the same fraction.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is the benchmark name with the -cpus suffix stripped.
	Name string `json:"name"`
	// Pkg is the package that produced the benchmark (the nearest
	// preceding `pkg:` header); combined runs concatenate several
	// packages' output, so provenance is per-benchmark.
	Pkg string `json:"pkg,omitempty"`
	// Iters is the harness iteration count.
	Iters int64 `json:"iters"`
	// Metrics maps unit -> value (ns/op, B/op, allocs/op, plus every
	// b.ReportMetric unit such as jobs/sec and allocs/event).
	Metrics map[string]float64 `json:"metrics"`
}

// File is the committed BENCH_*.json layout.
type File struct {
	// GeneratedAt is the RFC 3339 timestamp of the run.
	GeneratedAt string `json:"generated_at"`
	// Pkg records the bench header's package when every benchmark came
	// from one package (empty for combined multi-package runs — see
	// Benchmark.Pkg); Host records the CPU line, for provenance when
	// comparing across machines.
	Pkg  string `json:"pkg,omitempty"`
	Host string `json:"host,omitempty"`
	// GoMaxProcs records the worker parallelism of the run (the -<n>
	// suffix the bench harness appends to names; on single-core runs,
	// where the harness omits the suffix, -out falls back to its own
	// GOMAXPROCS), so throughput numbers carry the core count they were
	// measured at — essential provenance now that the parallel solver
	// benches scale with available cores.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// Benchmarks lists the parsed results, sorted by name.
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	var (
		out        = flag.String("out", "", "write the parsed run to this JSON file")
		check      = flag.String("check", "", "compare the parsed run against this baseline JSON file")
		maxRegress = flag.Float64("max-regress", 0.20, "maximum tolerated fractional regression")
		require    = flag.String("require", "", "comma-separated benchmark name prefixes that must appear in the parsed run; a bench that vanishes (e.g. its package failed to build) fails the check instead of silently dropping its gate")
	)
	flag.Parse()
	if (*out == "") == (*check == "") {
		fmt.Fprintln(os.Stderr, "benchjson: exactly one of -out or -check is required")
		os.Exit(2)
	}

	cur, err := Parse(os.Stdin)
	if err != nil {
		fail(err)
	}
	if len(cur.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if missing := missingRequired(cur, *require); len(missing) > 0 {
		fail(fmt.Errorf("required benchmark(s) missing from the run: %s (did a bench package fail?)", strings.Join(missing, ", ")))
	}

	if *out != "" {
		cur.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		if cur.GoMaxProcs == 0 {
			// The harness omits the -<n> name suffix when GOMAXPROCS is 1.
			// -out parses benches piped from this same machine, so our own
			// value is the run's.
			cur.GoMaxProcs = runtime.GOMAXPROCS(0)
		}
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("benchjson: wrote %d benchmark(s) to %s\n", len(cur.Benchmarks), *out)
		return
	}

	base, err := readFile(*check)
	if err != nil {
		fail(err)
	}
	report, ok := Compare(base, cur, *maxRegress)
	fmt.Print(report)
	if !ok {
		fmt.Fprintln(os.Stderr, "benchjson: FAIL: performance regressed beyond the threshold")
		os.Exit(1)
	}
	fmt.Println("benchjson: OK")
}

// missingRequired returns the -require prefixes matching no parsed
// benchmark name.
func missingRequired(f *File, require string) []string {
	var missing []string
	for _, prefix := range strings.Split(require, ",") {
		prefix = strings.TrimSpace(prefix)
		if prefix == "" {
			continue
		}
		found := false
		for _, b := range f.Benchmarks {
			if strings.HasPrefix(b.Name, prefix) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, prefix)
		}
	}
	return missing
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// Parse reads `go test -bench` output — possibly several packages'
// output concatenated — and extracts every benchmark line, attributing
// each to the nearest preceding `pkg:` header.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:"):
			continue
		case strings.HasPrefix(line, "cpu:"):
			f.Host = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, procs, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		b.Pkg = pkg
		if procs > 0 {
			f.GoMaxProcs = procs
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Single-package runs keep the top-level Pkg field for backward
	// compatibility; combined runs record provenance per benchmark only.
	single := true
	for _, b := range f.Benchmarks {
		if b.Pkg != pkg {
			single = false
			break
		}
	}
	if single {
		f.Pkg = pkg
		for i := range f.Benchmarks {
			f.Benchmarks[i].Pkg = ""
		}
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool { return f.Benchmarks[i].Name < f.Benchmarks[j].Name })
	return f, nil
}

// parseLine parses one benchmark line: name, iteration count, then
// (value, unit) pairs. The second return is the GOMAXPROCS suffix the
// harness appended to the name (0 when absent).
func parseLine(line string) (Benchmark, int, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, 0, fmt.Errorf("malformed benchmark line: %q", line)
	}
	name, procs := stripCPUSuffix(fields[0])
	b := Benchmark{Name: name, Metrics: map[string]float64{}}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, 0, fmt.Errorf("iteration count in %q: %w", line, err)
	}
	b.Iters = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, 0, fmt.Errorf("value %q in %q: %w", fields[i], line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, procs, nil
}

// stripCPUSuffix removes the trailing -<gomaxprocs> the bench harness
// appends to names (Benchmark names themselves never end in -<digits>)
// and returns its value, 0 when no suffix is present.
func stripCPUSuffix(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 0
	}
	procs, err := strconv.Atoi(name[i+1:])
	if err != nil || procs <= 0 {
		return name, 0
	}
	return name[:i], procs
}

// higherIsBetter classifies a metric unit: rates (anything per second)
// improve upward; costs (ns/op, B/op, allocs/op, allocs/event, B/event)
// improve downward.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/sec") || strings.HasSuffix(unit, "/s")
}

// gatedMetrics are the units the -check mode enforces; everything else is
// reported but informational. Rate metrics (jobs/sec, solves/sec) track
// wall clock; allocs/event and allocs/op are machine-independent and
// catch pooling regressions even across differing CI hardware (both
// solver benches and the sim throughput bench are deterministic, so
// their allocation counts are stable). peak-B is the streaming engine's
// memory ceiling (peak live heap of the stream-1M bench): it is bounded
// by queue depth plus look-ahead, so any O(trace-length) regression —
// retaining finished jobs, preloading arrivals, unbounded metrics —
// blows far past the tolerance. makespan-ms is the farm benches'
// grid-makespan (lower is better, per the suffix rule): it gates the
// coordinator's tail behavior — losing work-stealing or cache hits shows
// up as a multiple, not a percentage.
var gatedMetrics = map[string]bool{
	"jobs/sec":     true,
	"solves/sec":   true,
	"allocs/event": true,
	"allocs/op":    true,
	"peak-B":       true,
	"makespan-ms":  true,
}

// absSlack is the minimum absolute worsening, per unit, before a
// lower-is-better metric counts as regressed. Millisecond-scale
// makespans (the cache-warm farm bench completes its whole grid in a
// few ms) jitter by single milliseconds on a loaded CI box; a pure
// ratio gate over such a baseline would flag timer noise. The failures
// this gate exists for — a lost lever — show up as multiples of the
// slack.
var absSlack = map[string]float64{"makespan-ms": 10}

// Compare reports per-benchmark metric deltas and whether every gated
// metric stayed within the tolerated regression.
func Compare(base, cur *File, maxRegress float64) (string, bool) {
	var sb strings.Builder
	ok := true
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	for _, c := range cur.Benchmarks {
		b, found := baseBy[c.Name]
		if !found {
			fmt.Fprintf(&sb, "%s: new benchmark (no baseline)\n", c.Name)
			continue
		}
		// A gated metric the baseline tracks must still be reported by the
		// current run — otherwise the gate would silently become a no-op.
		for u := range b.Metrics {
			if _, inCur := c.Metrics[u]; gatedMetrics[u] && !inCur {
				fmt.Fprintf(&sb, "%s %s: gated metric missing from current run FAIL\n", c.Name, u)
				ok = false
			}
		}
		units := make([]string, 0, len(c.Metrics))
		for u := range c.Metrics {
			if _, inBase := b.Metrics[u]; inBase {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			was, now := b.Metrics[u], c.Metrics[u]
			delta := 0.0
			if was != 0 {
				delta = (now - was) / was
			}
			status := "ok"
			gated := gatedMetrics[u]
			regressed := false
			if higherIsBetter(u) {
				regressed = was > 0 && now < was*(1-maxRegress)
			} else {
				regressed = now > was*(1+maxRegress) && now-was > 1e-9 && now-was >= absSlack[u]
			}
			if regressed {
				if gated {
					status = "FAIL"
					ok = false
				} else {
					status = "regressed (informational)"
				}
			}
			fmt.Fprintf(&sb, "%s %s: %.4g -> %.4g (%+.1f%%) %s\n", c.Name, u, was, now, delta*100, status)
		}
	}
	return sb.String(), ok
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
