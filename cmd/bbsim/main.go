// Command bbsim runs trace-driven scheduling simulations and prints the
// §4.2 metrics.
//
// The trace comes either from a CSV file written by tracegen (-trace) or
// from the built-in generator (-system/-jobs/-variant as in tracegen).
// Methods are listed and instantiated from the shared method registry, so
// -methods always matches what the experiments harness runs.
//
// Beyond the canonical node + burst-buffer pair, any number of extra
// pool-style resource dimensions can be declared with -extra (repeatable)
// and given synthetic per-node demands with -extra-demand; methods then
// optimize one utilization objective per dimension:
//
//	bbsim -extra power_kw:400:kW -extra-demand power_kw:1-4 -method BBSched
//
// Large traces can be replayed through the streaming engine with
// -stream: the file (SWF or CSV by extension) is decoded job by job,
// metrics accumulate in constant memory, and peak usage is bounded by
// queue depth plus the ingestion look-ahead instead of trace length.
// -max-jobs caps how much of the file is ingested.
//
// Usage:
//
//	bbsim -system theta -scale 32 -jobs 500 -variant S4 -method BBSched
//	bbsim -trace theta-s4.csv -system theta -method Constrained_CPU
//	bbsim -variant S2 -sweep Baseline,BBSched -seeds 42,43   # parallel sweep
//	bbsim -stream thetalog.swf -max-jobs 1000000 -method BBSched
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"bbsched/internal/cluster"
	"bbsched/internal/core"
	"bbsched/internal/job"
	"bbsched/internal/moo"
	"bbsched/internal/registry"
	"bbsched/internal/sched"
	"bbsched/internal/sim"
	"bbsched/internal/trace"
)

// extraResFlag is one -extra declaration: name:capacity[:unit].
type extraResFlag struct{ specs []cluster.ResourceSpec }

func (f *extraResFlag) String() string { return fmt.Sprintf("%v", f.specs) }

func (f *extraResFlag) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return fmt.Errorf("want name:capacity[:unit], got %q", v)
	}
	capacity, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("capacity in %q: %w", v, err)
	}
	spec := cluster.ResourceSpec{Name: parts[0], Capacity: capacity}
	if len(parts) == 3 {
		spec.Unit = parts[2]
	}
	f.specs = append(f.specs, spec)
	return nil
}

// extraDemandFlag is one -extra-demand declaration: name:min-max[:frac],
// assigning each job (with probability frac, default 1) a demand of
// nodes × uniform[min, max] in the named dimension.
type extraDemandFlag struct {
	demands []extraDemand
}

type extraDemand struct {
	name     string
	min, max int64
	frac     float64
}

func (f *extraDemandFlag) String() string { return fmt.Sprintf("%v", f.demands) }

func (f *extraDemandFlag) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return fmt.Errorf("want name:min-max[:frac], got %q", v)
	}
	lohi := strings.SplitN(parts[1], "-", 2)
	d := extraDemand{name: parts[0], frac: 1}
	var err error
	if d.min, err = strconv.ParseInt(lohi[0], 10, 64); err != nil {
		return fmt.Errorf("min in %q: %w", v, err)
	}
	d.max = d.min
	if len(lohi) == 2 {
		if d.max, err = strconv.ParseInt(lohi[1], 10, 64); err != nil {
			return fmt.Errorf("max in %q: %w", v, err)
		}
	}
	if len(parts) == 3 {
		if d.frac, err = strconv.ParseFloat(parts[2], 64); err != nil {
			return fmt.Errorf("frac in %q: %w", v, err)
		}
	}
	f.demands = append(f.demands, d)
	return nil
}

func main() {
	var (
		traceFile  = flag.String("trace", "", "CSV trace file (optional; otherwise generated)")
		streamFile = flag.String("stream", "", "replay a trace file (.swf or .csv) through the streaming engine without materializing it: bounded-memory metrics, full-run measurement")
		maxJobs    = flag.Int("max-jobs", 0, "with -stream, ingest at most this many jobs from the file (0 = all)")
		system     = flag.String("system", "theta", "system model: cori or theta")
		scale      = flag.Int("scale", 32, "machine scale divisor")
		jobs       = flag.Int("jobs", 500, "generated job count (ignored with -trace)")
		variant    = flag.String("variant", "original", "original, S1..S7")
		seed       = flag.Uint64("seed", 42, "seed")
		methodName = flag.String("method", "BBSched", "scheduling method (see -methods)")
		solverName = flag.String("solver", "", "optimization backend override: ga, lp, greedy, exact, or portfolio (default: the method's own; see -methods)")
		window     = flag.Int("window", 20, "window size")
		starve     = flag.Int("starvation", 50, "starvation bound (0 = off)")
		gens       = flag.Int("generations", 500, "GA generations")
		pop        = flag.Int("population", 20, "GA population")
		noBackfill = flag.Bool("no-backfill", false, "disable EASY backfilling")
		adaptive   = flag.Bool("adaptive", false, "wrap BBSched with the adaptive trade-off controller")
		dynWindow  = flag.Bool("dynamic-window", false, "size the window from queue length instead of -window")
		stageOut   = flag.Float64("bb-drain-gbps", 0, "add stage-out phases at this drain bandwidth (0 = off)")
		eventLog   = flag.String("eventlog", "", "write a JSONL event log to this file")
		listM      = flag.Bool("methods", false, "list method names and exit")
		sweep      = flag.String("sweep", "", "comma-separated methods (or 'all') to sweep instead of one -method run")
		seedList   = flag.String("seeds", "", "comma-separated sweep seeds (default: -seed)")
		workers    = flag.Int("workers", 0, "sweep worker count (0 = GOMAXPROCS)")
		solWorkers = flag.Int("solver-workers", 0, "per-solve worker pool for parallel solver backends (0 = backend default, 1 = serial; results are bit-identical at any setting)")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf    = flag.String("memprofile", "", "write a pprof allocation profile to this file at exit")

		extraRes     extraResFlag
		extraDemands extraDemandFlag
	)
	flag.Var(&extraRes, "extra", "declare an extra resource dimension as name:capacity[:unit] (repeatable)")
	flag.Var(&extraDemands, "extra-demand", "give jobs demands in an -extra dimension as name:min-max[:frac] per node (repeatable)")
	flag.Parse()

	// Profiling hooks: grab pprof data from real single runs and sweeps,
	// so perf work can profile production-shaped workloads instead of
	// synthetic benches. stopProfiles runs on every exit path (fail()
	// included) to keep the CPU profile well-formed.
	if err := startProfiles(*cpuProf, *memProf); err != nil {
		fail(err)
	}
	defer stopProfiles()

	if *listM {
		for _, spec := range registry.Methods() {
			name := spec.Name
			if spec.Solver != "" {
				name += " [" + spec.Solver + "]"
			}
			fmt.Printf("%-21s %s\n", name, spec.Desc)
		}
		fmt.Println("\nsolvers (-solver):")
		for _, spec := range registry.Solvers() {
			fmt.Printf("%-21s %s\n", spec.Name, spec.Desc)
		}
		return
	}

	ga := moo.GAConfig{Generations: *gens, Population: *pop, MutationProb: 0.0005}

	if *streamFile != "" {
		if *traceFile != "" {
			fail(fmt.Errorf("-stream and -trace are mutually exclusive"))
		}
		if len(extraRes.specs) > 0 || len(extraDemands.demands) > 0 {
			fail(fmt.Errorf("-extra/-extra-demand retrofit a materialized workload; use -trace"))
		}
		if err := runStream(*streamFile, *system, *scale, *variant, *maxJobs, *seed,
			*methodName, *solverName, *sweep, *seedList, *workers, ga, *stageOut,
			*eventLog, *adaptive, baseOptions(*window, *starve, *solWorkers, *dynWindow, *noBackfill)); err != nil {
			fail(err)
		}
		return
	}
	if *maxJobs > 0 {
		fail(fmt.Errorf("-max-jobs only applies to -stream (use -jobs for the generator)"))
	}

	w, csvExtraNames, err := loadWorkload(*traceFile, *system, *jobs, *seed, *scale, *variant)
	if err != nil {
		fail(err)
	}
	if *stageOut > 0 {
		w = trace.WithStageOut(w, *stageOut)
	}
	// Extra resource dimensions: extend the machine, bind any CSV extra
	// columns to the declared dimensions by name, then retrofit the
	// requested synthetic demands onto the workload.
	for _, spec := range extraRes.specs {
		w.System = trace.WithExtraResource(w.System, spec)
	}
	if w, err = bindTraceExtras(w, csvExtraNames); err != nil {
		fail(err)
	}
	for _, d := range extraDemands.demands {
		dim := -1
		for i, spec := range w.System.Cluster.Extra {
			if spec.Name == d.name {
				dim = i
				break
			}
		}
		if dim < 0 {
			fail(fmt.Errorf("-extra-demand %s: no such -extra dimension", d.name))
		}
		w = trace.AddExtraDemand(w, "", dim, d.min, d.max, d.frac, *seed+uint64(dim))
	}
	// SSD-equipped workloads pair with the four-objective §5 method
	// variants; plain workloads with the two-objective §4 ones.
	ssd := len(w.System.Cluster.SSDClasses) > 0

	opts := baseOptions(*window, *starve, *solWorkers, *dynWindow, *noBackfill)

	if *sweep != "" {
		// Per-run flags that cannot apply to a grid of parallel runs.
		if *eventLog != "" {
			fail(fmt.Errorf("-eventlog is incompatible with -sweep (one log per run; use the single-run mode)"))
		}
		if *adaptive {
			fail(fmt.Errorf("-adaptive is incompatible with -sweep (the controller is stateful per run)"))
		}
		if err := runSweep(w, nil, *sweep, *seedList, *seed, ga, ssd, *solverName, *workers, opts); err != nil {
			fail(err)
		}
		return
	}

	method, err := registry.NewForCluster(*methodName, ga, w.System.Cluster, ssd)
	if err != nil {
		fail(err)
	}
	if *solverName != "" {
		if err := registry.ApplySolver(method, *solverName, ga); err != nil {
			fail(err)
		}
	}
	if *adaptive {
		bb, isBB := method.(*core.BBSched)
		if !isBB {
			fail(fmt.Errorf("-adaptive requires a BBSched method, got %s", method.Name()))
		}
		method = core.NewAdaptive(bb)
	}
	if *eventLog != "" {
		f, err := os.Create(*eventLog)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		opts = append(opts, sim.WithEventLog(f))
	}
	opts = append(opts, sim.WithSeed(*seed))

	s, err := sim.NewSimulator(w, method, opts...)
	if err != nil {
		fail(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		fail(err)
	}
	printResult(res)
}

// baseOptions are the simulator options shared by every run mode.
func baseOptions(window, starve, solverWorkers int, dynWindow, noBackfill bool) []sim.Option {
	plugin := core.PluginConfig{WindowSize: window, StarvationBound: starve}
	if dynWindow {
		plugin.WindowPolicy = core.NewAdaptiveWindow()
	}
	opts := []sim.Option{
		sim.WithPlugin(plugin),
		sim.WithBackfill(!noBackfill),
	}
	if solverWorkers != 0 {
		opts = append(opts, sim.WithSolverWorkers(solverWorkers))
	}
	return opts
}

// openStream opens path as a streaming job source — SWF or CSV by
// extension, gzip-compressed files (".gz") transparently — caps it at
// maxJobs, and layers the requested variant and stage-out transforms on
// top. It returns the wrapped source and the system model the variant
// targets.
func openStream(path, system string, scale int, variant string, maxJobs int, seed uint64, drainGBps float64) (trace.JobSource, trace.SystemModel, error) {
	sys, err := systemModel(system, scale)
	if err != nil {
		return nil, trace.SystemModel{}, err
	}
	src, err := trace.OpenTrace(path, trace.SWFOptions{})
	if err != nil {
		return nil, trace.SystemModel{}, err
	}
	if maxJobs > 0 {
		src = trace.LimitSource(src, maxJobs)
	}
	src, sys, _, err = trace.ApplyVariantSource(src, sys, variant, seed)
	if err != nil {
		return nil, trace.SystemModel{}, err
	}
	if drainGBps > 0 {
		src = trace.StageOutSource(src, drainGBps)
	}
	return src, sys, nil
}

// runStream drives a single run or a sweep over a file-backed stream.
// Metrics accumulate in bounded memory and cover the full run (a file
// stream has no known horizon for the fractional warm-up/cool-down trim).
func runStream(path, system string, scale int, variant string, maxJobs int, seed uint64,
	methodName, solverName, sweepCSV, seedCSV string, workers int, ga moo.GAConfig,
	drainGBps float64, eventLog string, adaptive bool, opts []sim.Option) error {
	// Resolve the variant's system (and whether it is SSD-equipped) from a
	// probe open, so method construction matches what each run will see.
	probe, sys, err := openStream(path, system, scale, variant, maxJobs, seed, drainGBps)
	if err != nil {
		return err
	}
	if c, ok := probe.(trace.Closer); ok {
		c.Close()
	}
	ssd := len(sys.Cluster.SSDClasses) > 0
	opts = append(opts, sim.WithStreamingMetrics(), sim.WithMeasurement(0, 0))

	if sweepCSV != "" {
		if eventLog != "" {
			return fmt.Errorf("-eventlog is incompatible with -sweep (one log per run; use the single-run mode)")
		}
		if adaptive {
			return fmt.Errorf("-adaptive is incompatible with -sweep (the controller is stateful per run)")
		}
		shell := trace.Workload{Name: path, System: sys}
		open := func() (trace.JobSource, error) {
			src, _, err := openStream(path, system, scale, variant, maxJobs, seed, drainGBps)
			return src, err
		}
		return runSweep(shell, open, sweepCSV, seedCSV, seed, ga, ssd, solverName, workers, opts)
	}

	method, err := registry.NewForCluster(methodName, ga, sys.Cluster, ssd)
	if err != nil {
		return err
	}
	if solverName != "" {
		if err := registry.ApplySolver(method, solverName, ga); err != nil {
			return err
		}
	}
	if adaptive {
		bb, isBB := method.(*core.BBSched)
		if !isBB {
			return fmt.Errorf("-adaptive requires a BBSched method, got %s", method.Name())
		}
		method = core.NewAdaptive(bb)
	}
	if eventLog != "" {
		f, err := os.Create(eventLog)
		if err != nil {
			return err
		}
		defer f.Close()
		opts = append(opts, sim.WithEventLog(f))
	}
	src, _, err := openStream(path, system, scale, variant, maxJobs, seed, drainGBps)
	if err != nil {
		return err
	}
	opts = append(opts, sim.WithSource(src), sim.WithSeed(seed))
	s, err := sim.NewSimulator(trace.Workload{Name: path, System: sys}, method, opts...)
	if err != nil {
		return err
	}
	res, err := s.Run(context.Background())
	if err != nil {
		return err
	}
	printResult(res)
	return nil
}

// runSweep runs method × seed combinations over one workload on the
// deterministic parallel sweep driver and prints a comparison table. A
// non-nil open sweeps the workload as a stream, re-opening a fresh
// source per grid cell.
func runSweep(w trace.Workload, open func() (trace.JobSource, error), methodCSV, seedCSV string, defaultSeed uint64, ga moo.GAConfig, ssd bool, solverName string, workers int, opts []sim.Option) error {
	var methods []sched.Method
	if methodCSV == "all" {
		var err error
		if methods, err = registry.RosterForCluster(ga, w.System.Cluster, ssd); err != nil {
			return err
		}
	} else {
		for _, n := range strings.Split(methodCSV, ",") {
			if n = strings.TrimSpace(n); n == "" {
				continue
			}
			m, err := registry.NewForCluster(n, ga, w.System.Cluster, ssd)
			if err != nil {
				return err
			}
			methods = append(methods, m)
		}
	}
	// A solver override applies to the methods that can take it; the rest
	// of the roster (fixed heuristics, capability mismatches like
	// BBSched+portfolio) is skipped with a note rather than aborting the
	// sweep — `-sweep all -solver lp` compares every LP-capable method.
	// Anything other than an incompatible pairing (an unknown solver name,
	// a bad config) is a real error and aborts.
	if solverName != "" {
		kept := methods[:0]
		for _, m := range methods {
			if err := registry.ApplySolver(m, solverName, ga); err != nil {
				if !errors.Is(err, registry.ErrIncompatibleSolver) {
					return err
				}
				fmt.Fprintf(os.Stderr, "bbsim: skipping %s: %v\n", m.Name(), err)
				continue
			}
			kept = append(kept, m)
		}
		methods = kept
		if len(methods) == 0 {
			return fmt.Errorf("no swept method accepts solver %q", solverName)
		}
	}

	seeds := []uint64{defaultSeed}
	if seedCSV != "" {
		seeds = seeds[:0]
		for _, f := range strings.Split(seedCSV, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return fmt.Errorf("bad -seeds entry %q: %w", f, err)
			}
			seeds = append(seeds, v)
		}
	}

	grid := sim.Sweep{
		Methods: methods,
		Seeds:   seeds,
		Options: opts,
		Workers: workers,
	}
	if open != nil {
		grid.Streams = []sim.StreamWorkload{{Name: w.Name, System: w.System, Open: open}}
	} else {
		grid.Workloads = []trace.Workload{w}
	}
	runs, err := sim.RunSweep(context.Background(), grid)
	if err != nil {
		return err
	}
	solverOf := make(map[string]string, len(methods))
	for _, m := range methods {
		solverOf[m.Name()] = sched.SolverNameOf(m)
	}
	if open != nil {
		fmt.Printf("workload: %s (streamed)\n\n", w.Name)
	} else {
		fmt.Printf("workload: %s (%d jobs)\n\n", w.Name, len(w.Jobs))
	}
	fmt.Printf("%-16s %-7s %-8s %10s %10s %12s %12s %10s\n",
		"method", "solver", "seed", "node use", "bb use", "avg wait", "avg slowdown", "makespan")
	for _, r := range runs {
		fmt.Printf("%-16s %-7s %-8d %9.2f%% %9.2f%% %11.0fs %12.2f %9ds\n",
			r.Method, solverOf[r.Method], r.Seed, r.Result.NodeUsage*100, r.Result.BBUsage*100,
			r.Result.AvgWaitSec, r.Result.AvgSlowdown, r.Result.MakespanSec)
	}
	return nil
}

// loadWorkload loads or generates the workload. For a CSV trace it also
// returns the file's extra-resource column names (res:<name>), in file
// order; the caller binds them to declared -extra dimensions by name.
func loadWorkload(traceFile, system string, jobs int, seed uint64, scale int, variant string) (trace.Workload, []string, error) {
	if traceFile == "" {
		w, err := buildGenerated(system, jobs, seed, scale, variant)
		return w, nil, err
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return trace.Workload{}, nil, err
	}
	defer f.Close()
	js, extraNames, err := trace.ReadCSVNamed(f)
	if err != nil {
		return trace.Workload{}, nil, err
	}
	sys, err := systemModel(system, scale)
	if err != nil {
		return trace.Workload{}, nil, err
	}
	if trace.IsSSDVariant(variant) {
		sys = trace.WithSSD(sys)
	}
	return trace.Workload{Name: traceFile, System: sys, Jobs: js}, extraNames, nil
}

// bindTraceExtras re-aligns CSV extra-demand columns (in csvNames order)
// to the machine's declared extra dimensions, matching by name. Every
// column must name a declared -extra dimension: binding by position
// would silently charge one resource's demands against another's budget.
func bindTraceExtras(w trace.Workload, csvNames []string) (trace.Workload, error) {
	if len(csvNames) == 0 {
		return w, nil
	}
	specs := w.System.Cluster.Extra
	perm := make([]int, len(csvNames)) // csv column -> spec index
	for k, name := range csvNames {
		perm[k] = -1
		for i, spec := range specs {
			if spec.Name == name {
				perm[k] = i
				break
			}
		}
		if perm[k] < 0 {
			return trace.Workload{}, fmt.Errorf(
				"trace column res:%s names no declared dimension; declare it with -extra %s:<capacity>", name, name)
		}
	}
	for _, j := range w.Jobs {
		aligned := make([]int64, len(specs))
		for k, i := range perm {
			aligned[i] = j.Demand.Extra(k)
		}
		j.Demand = job.NewDemandVector(j.Demand.NodeCount(), j.Demand.BB(), j.Demand.SSDPerNode(), aligned...)
	}
	return w, nil
}

func systemModel(system string, scale int) (trace.SystemModel, error) {
	switch strings.ToLower(system) {
	case "cori":
		return trace.Scale(trace.Cori(), scale), nil
	case "theta":
		return trace.Scale(trace.Theta(), scale), nil
	}
	return trace.SystemModel{}, fmt.Errorf("unknown system %q", system)
}

func buildGenerated(system string, jobs int, seed uint64, scale int, variant string) (trace.Workload, error) {
	sys, err := systemModel(system, scale)
	if err != nil {
		return trace.Workload{}, err
	}
	base := trace.Generate(trace.GenConfig{System: sys, Jobs: jobs, Seed: seed})
	base.Name = sys.Cluster.Name + "-Original"
	return trace.ApplyVariant(base, variant, seed)
}

func printResult(r *sim.Result) {
	fmt.Printf("workload:          %s\n", r.Workload)
	fmt.Printf("method:            %s\n", r.Method)
	fmt.Printf("jobs:              %d total, %d measured\n", r.TotalJobs, r.MeasuredJobs)
	fmt.Printf("node usage:        %.2f%%\n", r.NodeUsage*100)
	fmt.Printf("bb usage:          %.2f%%\n", r.BBUsage*100)
	if r.SSDUsage > 0 {
		fmt.Printf("ssd usage:         %.2f%%\n", r.SSDUsage*100)
		fmt.Printf("wasted ssd:        %.2f%%\n", r.WastedSSDFrac*100)
	}
	for _, dim := range r.ExtraUsage {
		fmt.Printf("%-18s %.2f%%\n", dim.Name+" usage:", dim.Usage*100)
	}
	fmt.Printf("avg wait:          %.0fs\n", r.AvgWaitSec)
	fmt.Printf("avg slowdown:      %.2f\n", r.AvgSlowdown)
	fmt.Printf("makespan:          %ds\n", r.MakespanSec)
	fmt.Printf("sched invocations: %d (avg %v, max %v per decision)\n",
		r.SchedInvocations, r.AvgDecisionTime, r.MaxDecisionTime)
}

// profileCleanup finishes any active profiles; set by startProfiles.
var profileCleanup func()

// startProfiles begins CPU profiling and/or arms the exit-time heap
// profile write. Either path may be empty.
func startProfiles(cpuPath, memPath string) error {
	var stops []func()
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if memPath != "" {
		stops = append(stops, func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bbsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle accounting so the profile reflects live heap
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "bbsim: memprofile:", err)
			}
		})
	}
	profileCleanup = func() {
		for _, stop := range stops {
			stop()
		}
		profileCleanup = nil
	}
	return nil
}

func stopProfiles() {
	if profileCleanup != nil {
		profileCleanup()
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bbsim:", err)
	stopProfiles()
	os.Exit(1)
}
