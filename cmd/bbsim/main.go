// Command bbsim runs trace-driven scheduling simulations and prints the
// §4.2 metrics.
//
// The trace comes either from a CSV file written by tracegen (-trace) or
// from the built-in generator (-system/-jobs/-variant as in tracegen).
// Methods are listed and instantiated from the shared method registry, so
// -methods always matches what the experiments harness runs.
//
// Usage:
//
//	bbsim -system theta -scale 32 -jobs 500 -variant S4 -method BBSched
//	bbsim -trace theta-s4.csv -system theta -method Constrained_CPU
//	bbsim -variant S2 -sweep Baseline,BBSched -seeds 42,43   # parallel sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bbsched/internal/core"
	"bbsched/internal/moo"
	"bbsched/internal/registry"
	"bbsched/internal/sched"
	"bbsched/internal/sim"
	"bbsched/internal/trace"
)

func main() {
	var (
		traceFile  = flag.String("trace", "", "CSV trace file (optional; otherwise generated)")
		system     = flag.String("system", "theta", "system model: cori or theta")
		scale      = flag.Int("scale", 32, "machine scale divisor")
		jobs       = flag.Int("jobs", 500, "generated job count (ignored with -trace)")
		variant    = flag.String("variant", "original", "original, S1..S7")
		seed       = flag.Uint64("seed", 42, "seed")
		methodName = flag.String("method", "BBSched", "scheduling method (see -methods)")
		window     = flag.Int("window", 20, "window size")
		starve     = flag.Int("starvation", 50, "starvation bound (0 = off)")
		gens       = flag.Int("generations", 500, "GA generations")
		pop        = flag.Int("population", 20, "GA population")
		noBackfill = flag.Bool("no-backfill", false, "disable EASY backfilling")
		adaptive   = flag.Bool("adaptive", false, "wrap BBSched with the adaptive trade-off controller")
		dynWindow  = flag.Bool("dynamic-window", false, "size the window from queue length instead of -window")
		stageOut   = flag.Float64("bb-drain-gbps", 0, "add stage-out phases at this drain bandwidth (0 = off)")
		eventLog   = flag.String("eventlog", "", "write a JSONL event log to this file")
		listM      = flag.Bool("methods", false, "list method names and exit")
		sweep      = flag.String("sweep", "", "comma-separated methods (or 'all') to sweep instead of one -method run")
		seedList   = flag.String("seeds", "", "comma-separated sweep seeds (default: -seed)")
		workers    = flag.Int("workers", 0, "sweep worker count (0 = GOMAXPROCS)")
	)
	flag.Parse()

	if *listM {
		for _, spec := range registry.Methods() {
			fmt.Printf("%-16s %s\n", spec.Name, spec.Desc)
		}
		return
	}

	ga := moo.GAConfig{Generations: *gens, Population: *pop, MutationProb: 0.0005}

	w, err := loadWorkload(*traceFile, *system, *jobs, *seed, *scale, *variant)
	if err != nil {
		fail(err)
	}
	if *stageOut > 0 {
		w = trace.WithStageOut(w, *stageOut)
	}
	// SSD-equipped workloads pair with the four-objective §5 method
	// variants; plain workloads with the two-objective §4 ones.
	ssd := len(w.System.Cluster.SSDClasses) > 0

	plugin := core.PluginConfig{WindowSize: *window, StarvationBound: *starve}
	if *dynWindow {
		plugin.WindowPolicy = core.NewAdaptiveWindow()
	}
	opts := []sim.Option{
		sim.WithPlugin(plugin),
		sim.WithBackfill(!*noBackfill),
	}

	if *sweep != "" {
		// Per-run flags that cannot apply to a grid of parallel runs.
		if *eventLog != "" {
			fail(fmt.Errorf("-eventlog is incompatible with -sweep (one log per run; use the single-run mode)"))
		}
		if *adaptive {
			fail(fmt.Errorf("-adaptive is incompatible with -sweep (the controller is stateful per run)"))
		}
		if err := runSweep(w, *sweep, *seedList, *seed, ga, ssd, *workers, opts); err != nil {
			fail(err)
		}
		return
	}

	method, err := registry.New(*methodName, ga, ssd)
	if err != nil {
		fail(err)
	}
	if *adaptive {
		bb, isBB := method.(*core.BBSched)
		if !isBB {
			fail(fmt.Errorf("-adaptive requires a BBSched method, got %s", method.Name()))
		}
		method = core.NewAdaptive(bb)
	}
	if *eventLog != "" {
		f, err := os.Create(*eventLog)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		opts = append(opts, sim.WithEventLog(f))
	}
	opts = append(opts, sim.WithSeed(*seed))

	s, err := sim.NewSimulator(w, method, opts...)
	if err != nil {
		fail(err)
	}
	res, err := s.Run(context.Background())
	if err != nil {
		fail(err)
	}
	printResult(res)
}

// runSweep runs method × seed combinations over one workload on the
// deterministic parallel sweep driver and prints a comparison table.
func runSweep(w trace.Workload, methodCSV, seedCSV string, defaultSeed uint64, ga moo.GAConfig, ssd bool, workers int, opts []sim.Option) error {
	var methods []sched.Method
	if methodCSV == "all" {
		if ssd {
			methods = registry.Section5(ga)
		} else {
			methods = registry.Section4(ga)
		}
	} else {
		for _, n := range strings.Split(methodCSV, ",") {
			if n = strings.TrimSpace(n); n == "" {
				continue
			}
			m, err := registry.New(n, ga, ssd)
			if err != nil {
				return err
			}
			methods = append(methods, m)
		}
	}

	seeds := []uint64{defaultSeed}
	if seedCSV != "" {
		seeds = seeds[:0]
		for _, f := range strings.Split(seedCSV, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				return fmt.Errorf("bad -seeds entry %q: %w", f, err)
			}
			seeds = append(seeds, v)
		}
	}

	runs, err := sim.RunSweep(context.Background(), sim.Sweep{
		Workloads: []trace.Workload{w},
		Methods:   methods,
		Seeds:     seeds,
		Options:   opts,
		Workers:   workers,
	})
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s (%d jobs)\n\n", w.Name, len(w.Jobs))
	fmt.Printf("%-16s %-8s %10s %10s %12s %12s %10s\n",
		"method", "seed", "node use", "bb use", "avg wait", "avg slowdown", "makespan")
	for _, r := range runs {
		fmt.Printf("%-16s %-8d %9.2f%% %9.2f%% %11.0fs %12.2f %9ds\n",
			r.Method, r.Seed, r.Result.NodeUsage*100, r.Result.BBUsage*100,
			r.Result.AvgWaitSec, r.Result.AvgSlowdown, r.Result.MakespanSec)
	}
	return nil
}

func loadWorkload(traceFile, system string, jobs int, seed uint64, scale int, variant string) (trace.Workload, error) {
	if traceFile == "" {
		return buildGenerated(system, jobs, seed, scale, variant)
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return trace.Workload{}, err
	}
	defer f.Close()
	js, err := trace.ReadCSV(f)
	if err != nil {
		return trace.Workload{}, err
	}
	sys, err := systemModel(system, scale)
	if err != nil {
		return trace.Workload{}, err
	}
	if trace.IsSSDVariant(variant) {
		sys = trace.WithSSD(sys)
	}
	return trace.Workload{Name: traceFile, System: sys, Jobs: js}, nil
}

func systemModel(system string, scale int) (trace.SystemModel, error) {
	switch strings.ToLower(system) {
	case "cori":
		return trace.Scale(trace.Cori(), scale), nil
	case "theta":
		return trace.Scale(trace.Theta(), scale), nil
	}
	return trace.SystemModel{}, fmt.Errorf("unknown system %q", system)
}

func buildGenerated(system string, jobs int, seed uint64, scale int, variant string) (trace.Workload, error) {
	sys, err := systemModel(system, scale)
	if err != nil {
		return trace.Workload{}, err
	}
	base := trace.Generate(trace.GenConfig{System: sys, Jobs: jobs, Seed: seed})
	base.Name = sys.Cluster.Name + "-Original"
	return trace.ApplyVariant(base, variant, seed)
}

func printResult(r *sim.Result) {
	fmt.Printf("workload:          %s\n", r.Workload)
	fmt.Printf("method:            %s\n", r.Method)
	fmt.Printf("jobs:              %d total, %d measured\n", r.TotalJobs, r.MeasuredJobs)
	fmt.Printf("node usage:        %.2f%%\n", r.NodeUsage*100)
	fmt.Printf("bb usage:          %.2f%%\n", r.BBUsage*100)
	if r.SSDUsage > 0 {
		fmt.Printf("ssd usage:         %.2f%%\n", r.SSDUsage*100)
		fmt.Printf("wasted ssd:        %.2f%%\n", r.WastedSSDFrac*100)
	}
	fmt.Printf("avg wait:          %.0fs\n", r.AvgWaitSec)
	fmt.Printf("avg slowdown:      %.2f\n", r.AvgSlowdown)
	fmt.Printf("makespan:          %ds\n", r.MakespanSec)
	fmt.Printf("sched invocations: %d (avg %v, max %v per decision)\n",
		r.SchedInvocations, r.AvgDecisionTime, r.MaxDecisionTime)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bbsim:", err)
	os.Exit(1)
}
