// Command bbsim runs one trace-driven scheduling simulation and prints the
// §4.2 metrics.
//
// The trace comes either from a CSV file written by tracegen (-trace) or
// from the built-in generator (-system/-jobs/-variant as in tracegen).
//
// Usage:
//
//	bbsim -system theta -scale 32 -jobs 500 -variant S4 -method BBSched
//	bbsim -trace theta-s4.csv -system theta -method Constrained_CPU
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bbsched/internal/core"
	"bbsched/internal/experiments"
	"bbsched/internal/moo"
	"bbsched/internal/sched"
	"bbsched/internal/sim"
	"bbsched/internal/trace"
)

func main() {
	var (
		traceFile  = flag.String("trace", "", "CSV trace file (optional; otherwise generated)")
		system     = flag.String("system", "theta", "system model: cori or theta")
		scale      = flag.Int("scale", 32, "machine scale divisor")
		jobs       = flag.Int("jobs", 500, "generated job count (ignored with -trace)")
		variant    = flag.String("variant", "original", "original, S1..S7")
		seed       = flag.Uint64("seed", 42, "seed")
		methodName = flag.String("method", "BBSched", "scheduling method (see -methods)")
		window     = flag.Int("window", 20, "window size")
		starve     = flag.Int("starvation", 50, "starvation bound (0 = off)")
		gens       = flag.Int("generations", 500, "GA generations")
		pop        = flag.Int("population", 20, "GA population")
		noBackfill = flag.Bool("no-backfill", false, "disable EASY backfilling")
		adaptive   = flag.Bool("adaptive", false, "wrap BBSched with the adaptive trade-off controller")
		dynWindow  = flag.Bool("dynamic-window", false, "size the window from queue length instead of -window")
		stageOut   = flag.Float64("bb-drain-gbps", 0, "add stage-out phases at this drain bandwidth (0 = off)")
		eventLog   = flag.String("eventlog", "", "write a JSONL event log to this file")
		listM      = flag.Bool("methods", false, "list method names and exit")
	)
	flag.Parse()

	ga := moo.GAConfig{Generations: *gens, Population: *pop, MutationProb: 0.0005}
	roster := map[string]sched.Method{}
	for _, m := range append(experiments.Methods(ga), experiments.SSDMethods(ga)...) {
		roster[m.Name()] = m
	}
	if *listM {
		for _, m := range experiments.Methods(ga) {
			fmt.Println(m.Name())
		}
		fmt.Println("Constrained_SSD")
		return
	}
	method, ok := roster[*methodName]
	if !ok {
		fail(fmt.Errorf("unknown method %q", *methodName))
	}
	if *adaptive {
		bb, isBB := method.(*core.BBSched)
		if !isBB {
			fail(fmt.Errorf("-adaptive requires a BBSched method, got %s", method.Name()))
		}
		method = core.NewAdaptive(bb)
	}

	w, err := loadWorkload(*traceFile, *system, *jobs, *seed, *scale, *variant)
	if err != nil {
		fail(err)
	}
	if *stageOut > 0 {
		w = trace.WithStageOut(w, *stageOut)
	}
	plugin := core.PluginConfig{WindowSize: *window, StarvationBound: *starve}
	if *dynWindow {
		plugin.WindowPolicy = core.NewAdaptiveWindow()
	}
	cfg := sim.Config{
		Workload:        w,
		Method:          method,
		Plugin:          plugin,
		DisableBackfill: *noBackfill,
		Seed:            *seed,
	}
	if *eventLog != "" {
		f, err := os.Create(*eventLog)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		cfg.EventLog = f
	}
	res, err := sim.Run(cfg)
	if err != nil {
		fail(err)
	}
	printResult(res)
}

func loadWorkload(traceFile, system string, jobs int, seed uint64, scale int, variant string) (trace.Workload, error) {
	if traceFile == "" {
		return buildGenerated(system, jobs, seed, scale, variant)
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return trace.Workload{}, err
	}
	defer f.Close()
	js, err := trace.ReadCSV(f)
	if err != nil {
		return trace.Workload{}, err
	}
	sys, err := systemModel(system, scale)
	if err != nil {
		return trace.Workload{}, err
	}
	if strings.ToUpper(variant)[0] == 'S' && variant >= "S5" {
		sys = trace.WithSSD(sys)
	}
	return trace.Workload{Name: traceFile, System: sys, Jobs: js}, nil
}

func systemModel(system string, scale int) (trace.SystemModel, error) {
	switch strings.ToLower(system) {
	case "cori":
		return trace.Scale(trace.Cori(), scale), nil
	case "theta":
		return trace.Scale(trace.Theta(), scale), nil
	}
	return trace.SystemModel{}, fmt.Errorf("unknown system %q", system)
}

func buildGenerated(system string, jobs int, seed uint64, scale int, variant string) (trace.Workload, error) {
	sys, err := systemModel(system, scale)
	if err != nil {
		return trace.Workload{}, err
	}
	base := trace.Generate(trace.GenConfig{System: sys, Jobs: jobs, Seed: seed})
	base.Name = sys.Cluster.Name + "-Original"
	floor5, floor20 := trace.BBFloors(base)
	switch strings.ToUpper(variant) {
	case "ORIGINAL", "":
		return base, nil
	case "S1":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S1", 0.50, floor5, seed+1), nil
	case "S2":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S2", 0.75, floor5, seed+2), nil
	case "S3":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S3", 0.50, floor20, seed+3), nil
	case "S4":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S4", 0.75, floor20, seed+4), nil
	case "S5", "S6", "S7":
		mix := map[string]trace.SSDMix{"S5": trace.S5, "S6": trace.S6, "S7": trace.S7}[strings.ToUpper(variant)]
		s2 := trace.ExpandBB(base, sys.Cluster.Name+"-S2", 0.75, floor5, seed+2)
		return trace.AddSSD(s2, sys.Cluster.Name+"-"+strings.ToUpper(variant), mix, seed+5), nil
	}
	return trace.Workload{}, fmt.Errorf("unknown variant %q", variant)
}

func printResult(r *sim.Result) {
	fmt.Printf("workload:          %s\n", r.Workload)
	fmt.Printf("method:            %s\n", r.Method)
	fmt.Printf("jobs:              %d total, %d measured\n", r.TotalJobs, r.MeasuredJobs)
	fmt.Printf("node usage:        %.2f%%\n", r.NodeUsage*100)
	fmt.Printf("bb usage:          %.2f%%\n", r.BBUsage*100)
	if r.SSDUsage > 0 {
		fmt.Printf("ssd usage:         %.2f%%\n", r.SSDUsage*100)
		fmt.Printf("wasted ssd:        %.2f%%\n", r.WastedSSDFrac*100)
	}
	fmt.Printf("avg wait:          %.0fs\n", r.AvgWaitSec)
	fmt.Printf("avg slowdown:      %.2f\n", r.AvgSlowdown)
	fmt.Printf("makespan:          %ds\n", r.MakespanSec)
	fmt.Printf("sched invocations: %d (avg %v, max %v per decision)\n",
		r.SchedInvocations, r.AvgDecisionTime, r.MaxDecisionTime)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bbsim:", err)
	os.Exit(1)
}
