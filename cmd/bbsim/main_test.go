package main

import (
	"os"
	"path/filepath"
	"testing"

	"bbsched/internal/trace"
)

func TestBuildGeneratedVariants(t *testing.T) {
	for _, variant := range []string{"original", "s1", "S4", "s6"} {
		w, err := buildGenerated("theta", 80, 1, 32, variant)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
	}
	if _, err := buildGenerated("theta", 10, 1, 32, "S99"); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := buildGenerated("mira", 10, 1, 32, "original"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestLoadWorkloadFromCSV(t *testing.T) {
	w, err := buildGenerated("theta", 40, 3, 32, "original")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, w.Jobs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, err := loadWorkload(path, "theta", 0, 3, 32, "original")
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Jobs) != 40 {
		t.Fatalf("loaded %d jobs", len(loaded.Jobs))
	}
	if loaded.System.Cluster.Nodes != w.System.Cluster.Nodes {
		t.Fatal("system model mismatch")
	}
}

func TestLoadWorkloadMissingFile(t *testing.T) {
	if _, err := loadWorkload("/nonexistent/trace.csv", "theta", 0, 32, 32, "original"); err == nil {
		t.Fatal("missing file accepted")
	}
}
