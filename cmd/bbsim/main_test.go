package main

import (
	"os"
	"path/filepath"
	"testing"

	"bbsched/internal/cluster"
	"bbsched/internal/job"
	"bbsched/internal/trace"
)

func TestBuildGeneratedVariants(t *testing.T) {
	for _, variant := range []string{"original", "s1", "S4", "s6"} {
		w, err := buildGenerated("theta", 80, 1, 32, variant)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
	}
	if _, err := buildGenerated("theta", 10, 1, 32, "S99"); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := buildGenerated("mira", 10, 1, 32, "original"); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestLoadWorkloadFromCSV(t *testing.T) {
	w, err := buildGenerated("theta", 40, 3, 32, "original")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f, w.Jobs); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, _, err := loadWorkload(path, "theta", 0, 3, 32, "original")
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Jobs) != 40 {
		t.Fatalf("loaded %d jobs", len(loaded.Jobs))
	}
	if loaded.System.Cluster.Nodes != w.System.Cluster.Nodes {
		t.Fatal("system model mismatch")
	}
}

func TestLoadWorkloadMissingFile(t *testing.T) {
	if _, _, err := loadWorkload("/nonexistent/trace.csv", "theta", 0, 32, 32, "original"); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestBindTraceExtrasByName guards the CSV extra-column binding: columns
// bind to declared -extra dimensions by NAME, never by position, and an
// undeclared column is an error rather than a silently mischarged budget.
func TestBindTraceExtrasByName(t *testing.T) {
	jobs := []*job.Job{
		job.MustNew(0, 0, 600, 900, job.NewDemandVector(4, 100, 0, 7, 40)),
	}
	path := filepath.Join(t.TempDir(), "extras.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// File order: nvram_gb first, power_kw second.
	if err := trace.WriteCSV(f, jobs, "nvram_gb", "power_kw"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, names, err := loadWorkload(path, "theta", 0, 1, 32, "original")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "nvram_gb" || names[1] != "power_kw" {
		t.Fatalf("extra column names = %v", names)
	}
	// Declared order: power_kw first — the demands must swap accordingly.
	w.System = trace.WithExtraResource(w.System, cluster.ResourceSpec{Name: "power_kw", Capacity: 100, Unit: "kW"})
	w.System = trace.WithExtraResource(w.System, cluster.ResourceSpec{Name: "nvram_gb", Capacity: 500, Unit: "GB"})
	bound, err := bindTraceExtras(w, names)
	if err != nil {
		t.Fatal(err)
	}
	d := bound.Jobs[0].Demand
	if d.Extra(0) != 40 || d.Extra(1) != 7 {
		t.Fatalf("extras bound positionally, not by name: [%d %d], want [40 7]", d.Extra(0), d.Extra(1))
	}

	// An undeclared column must fail loudly.
	w.System.Cluster.Extra = w.System.Cluster.Extra[:1] // drop nvram_gb
	if _, err := bindTraceExtras(w, names); err == nil {
		t.Fatal("undeclared trace column accepted")
	}
}
