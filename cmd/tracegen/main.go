// Command tracegen generates synthetic Cori-like or Theta-like workload
// traces (optionally with the paper's S1–S4 burst-buffer expansions or
// S5–S7 local-SSD mixes) and writes them as CSV.
//
// Usage:
//
//	tracegen -system theta -jobs 5000 -variant S4 -o theta-s4.csv
//	tracegen -system cori -scale 64 -variant S6 -o cori-s6.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bbsched/internal/trace"
)

func main() {
	var (
		system  = flag.String("system", "theta", "system model: cori or theta")
		jobs    = flag.Int("jobs", 1000, "number of jobs")
		seed    = flag.Uint64("seed", 42, "generator seed")
		scale   = flag.Int("scale", 1, "machine scale divisor (1 = full size)")
		variant = flag.String("variant", "original", "original, S1..S4 (burst buffer), S5..S7 (local SSD)")
		deps    = flag.Float64("deps", 0, "fraction of jobs given a dependency")
		out     = flag.String("o", "-", "output file ('-' = stdout)")
	)
	flag.Parse()

	w, err := build(*system, *jobs, *seed, *scale, strings.ToUpper(*variant), *deps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	var dst io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := trace.WriteCSV(dst, w.Jobs); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	st := trace.ComputeStats(w.Jobs)
	fmt.Fprintf(os.Stderr, "%s: %d jobs, %d with BB requests (%.1f TB aggregate), horizon %ds\n",
		w.Name, st.Jobs, st.BBJobs, float64(st.TotalBBGB)/1000, st.HorizonSec)
}

func build(system string, jobs int, seed uint64, scale int, variant string, deps float64) (trace.Workload, error) {
	var sys trace.SystemModel
	switch strings.ToLower(system) {
	case "cori":
		sys = trace.Cori()
	case "theta":
		sys = trace.Theta()
	default:
		return trace.Workload{}, fmt.Errorf("unknown system %q (want cori or theta)", system)
	}
	sys = trace.Scale(sys, scale)
	base := trace.Generate(trace.GenConfig{System: sys, Jobs: jobs, Seed: seed, DependencyFraction: deps})
	base.Name = sys.Cluster.Name + "-Original"

	floor5, floor20 := trace.BBFloors(base)
	switch variant {
	case "ORIGINAL", "":
		return base, nil
	case "S1":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S1", 0.50, floor5, seed+1), nil
	case "S2":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S2", 0.75, floor5, seed+2), nil
	case "S3":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S3", 0.50, floor20, seed+3), nil
	case "S4":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S4", 0.75, floor20, seed+4), nil
	case "S5", "S6", "S7":
		mix := map[string]trace.SSDMix{"S5": trace.S5, "S6": trace.S6, "S7": trace.S7}[variant]
		s2 := trace.ExpandBB(base, sys.Cluster.Name+"-S2", 0.75, floor5, seed+2)
		return trace.AddSSD(s2, sys.Cluster.Name+"-"+variant, mix, seed+5), nil
	default:
		return trace.Workload{}, fmt.Errorf("unknown variant %q", variant)
	}
}
