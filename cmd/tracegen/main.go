// Command tracegen generates synthetic Cori-like or Theta-like workload
// traces (optionally with the paper's S1–S4 burst-buffer expansions or
// S5–S7 local-SSD mixes) and writes them as CSV.
//
// With -stream the trace is generated and written one job at a time
// through the streaming pipeline (GenSource → variant combinators →
// CSVWriter), so arbitrarily long traces — the 1M-job bench input, say —
// are produced in constant memory. Streaming variants approximate the
// materialized expansions distributionally (see ApplyVariantSource), so
// the two modes emit different bytes for S1–S7.
//
// Usage:
//
//	tracegen -system theta -jobs 5000 -variant S4 -o theta-s4.csv
//	tracegen -system cori -scale 64 -variant S6 -o cori-s6.csv
//	tracegen -stream -jobs 1000000 -variant S2 -o theta-s2-1m.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bbsched/internal/trace"
)

func main() {
	var (
		system  = flag.String("system", "theta", "system model: cori or theta")
		jobs    = flag.Int("jobs", 1000, "number of jobs")
		seed    = flag.Uint64("seed", 42, "generator seed")
		scale   = flag.Int("scale", 1, "machine scale divisor (1 = full size)")
		variant = flag.String("variant", "original", "original, S1..S4 (burst buffer), S5..S7 (local SSD)")
		deps    = flag.Float64("deps", 0, "fraction of jobs given a dependency")
		stream  = flag.Bool("stream", false, "generate and write one job at a time (constant memory; for very large -jobs)")
		out     = flag.String("o", "-", "output file ('-' = stdout)")
	)
	flag.Parse()

	var dst io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}

	var err error
	if *stream {
		err = emitStream(dst, *system, *jobs, *seed, *scale, strings.ToUpper(*variant), *deps)
	} else {
		err = emitMaterialized(dst, *system, *jobs, *seed, *scale, strings.ToUpper(*variant), *deps)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func emitMaterialized(dst io.Writer, system string, jobs int, seed uint64, scale int, variant string, deps float64) error {
	w, err := build(system, jobs, seed, scale, variant, deps)
	if err != nil {
		return err
	}
	if err := trace.WriteCSV(dst, w.Jobs); err != nil {
		return err
	}
	st := trace.ComputeStats(w.Jobs)
	fmt.Fprintf(os.Stderr, "%s: %d jobs, %d with BB requests (%.1f TB aggregate), horizon %ds\n",
		w.Name, st.Jobs, st.BBJobs, float64(st.TotalBBGB)/1000, st.HorizonSec)
	return nil
}

// emitStream writes the trace through the streaming pipeline, tracking
// the summary line's statistics as running sums.
func emitStream(dst io.Writer, system string, jobs int, seed uint64, scale int, variant string, deps float64) error {
	sys, err := systemModel(system, scale)
	if err != nil {
		return err
	}
	src := trace.GenSource(trace.GenConfig{System: sys, Jobs: jobs, Seed: seed, DependencyFraction: deps})
	src, _, name, err := trace.ApplyVariantSource(src, sys, variant, seed)
	if err != nil {
		return err
	}
	w := trace.NewCSVWriter(dst)
	var n, bbJobs int
	var bbGB, horizon int64
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := w.Write(j); err != nil {
			return err
		}
		n++
		if bb := j.Demand.BB(); bb > 0 {
			bbJobs++
			bbGB += bb
		}
		horizon = j.SubmitTime
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%s: %d jobs, %d with BB requests (%.1f TB aggregate), horizon %ds\n",
		name, n, bbJobs, float64(bbGB)/1000, horizon)
	return nil
}

func systemModel(system string, scale int) (trace.SystemModel, error) {
	var sys trace.SystemModel
	switch strings.ToLower(system) {
	case "cori":
		sys = trace.Cori()
	case "theta":
		sys = trace.Theta()
	default:
		return trace.SystemModel{}, fmt.Errorf("unknown system %q (want cori or theta)", system)
	}
	return trace.Scale(sys, scale), nil
}

func build(system string, jobs int, seed uint64, scale int, variant string, deps float64) (trace.Workload, error) {
	sys, err := systemModel(system, scale)
	if err != nil {
		return trace.Workload{}, err
	}
	base := trace.Generate(trace.GenConfig{System: sys, Jobs: jobs, Seed: seed, DependencyFraction: deps})
	base.Name = sys.Cluster.Name + "-Original"

	floor5, floor20 := trace.BBFloors(base)
	switch variant {
	case "ORIGINAL", "":
		return base, nil
	case "S1":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S1", 0.50, floor5, seed+1), nil
	case "S2":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S2", 0.75, floor5, seed+2), nil
	case "S3":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S3", 0.50, floor20, seed+3), nil
	case "S4":
		return trace.ExpandBB(base, sys.Cluster.Name+"-S4", 0.75, floor20, seed+4), nil
	case "S5", "S6", "S7":
		mix := map[string]trace.SSDMix{"S5": trace.S5, "S6": trace.S6, "S7": trace.S7}[variant]
		s2 := trace.ExpandBB(base, sys.Cluster.Name+"-S2", 0.75, floor5, seed+2)
		return trace.AddSSD(s2, sys.Cluster.Name+"-"+variant, mix, seed+5), nil
	default:
		return trace.Workload{}, fmt.Errorf("unknown variant %q", variant)
	}
}
