package main

import (
	"bytes"
	"testing"

	"bbsched/internal/trace"
)

func TestBuildVariants(t *testing.T) {
	for _, variant := range []string{"ORIGINAL", "S1", "S2", "S3", "S4", "S5", "S6", "S7"} {
		w, err := build("theta", 120, 1, 32, variant, 0)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if len(w.Jobs) != 120 {
			t.Fatalf("%s: %d jobs", variant, len(w.Jobs))
		}
		ssd := variant >= "S5" && variant <= "S7"
		if ssd && len(w.System.Cluster.SSDClasses) == 0 {
			t.Fatalf("%s: SSD variant without SSD classes", variant)
		}
	}
}

func TestBuildCori(t *testing.T) {
	w, err := build("cori", 50, 1, 64, "ORIGINAL", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if w.System.Policy != trace.FCFS {
		t.Fatal("Cori should use FCFS")
	}
	deps := 0
	for _, j := range w.Jobs {
		deps += len(j.Deps)
	}
	if deps == 0 {
		t.Fatal("dependency fraction ignored")
	}
}

func TestBuildRejectsUnknown(t *testing.T) {
	if _, err := build("summit", 10, 1, 1, "ORIGINAL", 0); err == nil {
		t.Fatal("unknown system accepted")
	}
	if _, err := build("theta", 10, 1, 1, "S9", 0); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestBuildOutputRoundTrips(t *testing.T) {
	w, err := build("theta", 60, 2, 32, "S4", 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteCSV(&buf, w.Jobs); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 60 {
		t.Fatalf("round trip = %d jobs", len(back))
	}
}
