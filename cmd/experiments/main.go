// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run fig6            # one artifact
//	experiments -run all             # everything, in paper order
//	experiments -list                # available IDs
//
// Scale knobs (-jobs, -scale-cori, -scale-theta, -generations) trade
// fidelity for runtime; defaults regenerate the full matrix in minutes on
// a laptop. See EXPERIMENTS.md for the parameters used in the recorded
// results.
package main

import (
	"flag"
	"fmt"
	"os"

	"bbsched/internal/experiments"
)

func main() {
	var (
		run        = flag.String("run", "all", "experiment id (see -list) or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		jobs       = flag.Int("jobs", 0, "jobs per trace (default 400)")
		seed       = flag.Uint64("seed", 0, "experiment seed (default 42)")
		scaleCori  = flag.Int("scale-cori", 0, "Cori scale divisor (default 64; 1 = full size)")
		scaleTheta = flag.Int("scale-theta", 0, "Theta scale divisor (default 32; 1 = full size)")
		gens       = flag.Int("generations", 0, "GA generations (default 500)")
		pop        = flag.Int("population", 0, "GA population (default 20)")
		window     = flag.Int("window", 0, "scheduling window size (default 20)")
		workers    = flag.Int("workers", 0, "parallel simulation workers (default GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-10s %s\n", id, experiments.Describe(id))
		}
		return
	}

	o := experiments.Defaults()
	if *jobs > 0 {
		o.Jobs = *jobs
	}
	if *seed > 0 {
		o.Seed = *seed
	}
	if *scaleCori > 0 {
		o.ScaleCori = *scaleCori
	}
	if *scaleTheta > 0 {
		o.ScaleTheta = *scaleTheta
	}
	if *gens > 0 {
		o.GA.Generations = *gens
	}
	if *pop > 0 {
		o.GA.Population = *pop
	}
	if *window > 0 {
		o.Window = *window
	}
	if *workers > 0 {
		o.Parallelism = *workers
	}

	r := experiments.NewRunner(o)
	if *run == "all" {
		if err := r.RunAll(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	out, err := r.Run(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
