// SWF + observability: drive the simulator from a Standard Workload
// Format log (the parallel workloads archive format), layer synthetic
// burst-buffer demands on it the way the paper enhanced Theta's log with
// Darshan data, and read the machine's utilization timeline back from the
// simulation event log.
//
// Run with: go run ./examples/swfobservability
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"bbsched/internal/core"
	"bbsched/internal/sim"
	"bbsched/internal/trace"
)

func main() {
	// A workload exported as SWF (stands in for an archive download);
	// SWF carries no burst-buffer fields.
	system := trace.Scale(trace.Theta(), 32)
	original := trace.Generate(trace.GenConfig{System: system, Jobs: 200, Seed: 21})
	var swf bytes.Buffer
	if err := trace.WriteSWF(&swf, original.Jobs, 64); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SWF log: %d bytes, first line: %.60s...\n\n", swf.Len(), firstDataLine(swf.String()))

	// Import and enhance: 75% of jobs get heavy burst-buffer requests.
	jobs, err := trace.ReadSWF(bytes.NewReader(swf.Bytes()), trace.SWFOptions{CoresPerNode: 64})
	if err != nil {
		log.Fatal(err)
	}
	w := trace.Workload{Name: "swf-import", System: system, Jobs: jobs}
	_, heavy := trace.BBFloors(w)
	w = trace.ExpandBB(w, "swf-S4", 0.75, heavy, 23)

	// Simulate with the event log enabled.
	var events bytes.Buffer
	res, err := sim.Run(sim.Config{
		Workload: w,
		Method:   core.New(),
		Plugin:   core.DefaultPluginConfig(),
		Seed:     1,
		EventLog: &events,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d jobs: node %.1f%%, bb %.1f%%, wait %.0fs\n\n",
		res.TotalJobs, res.NodeUsage*100, res.BBUsage*100, res.AvgWaitSec)

	// Rebuild a node-utilization timeline from the log: peak usage per
	// tenth of the makespan.
	recs, err := sim.ReadEventLog(&events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("node utilization timeline (peak per decile of makespan):")
	buckets := make([]int, 10)
	for _, r := range recs {
		d := int(r.T * 10 / (res.MakespanSec + 1))
		if r.UsedNodes > buckets[d] {
			buckets[d] = r.UsedNodes
		}
	}
	for i, peak := range buckets {
		frac := float64(peak) / float64(system.Cluster.Nodes)
		fmt.Printf("  %3d%%-%3d%%  %s %.0f%%\n", i*10, (i+1)*10,
			strings.Repeat("#", int(frac*40)), frac*100)
	}
}

func firstDataLine(s string) string {
	for _, line := range strings.Split(s, "\n") {
		if line != "" && !strings.HasPrefix(line, ";") {
			return line
		}
	}
	return ""
}
