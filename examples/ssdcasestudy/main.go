// SSD case study (§5): extend BBSched from two to four objectives — node
// utilization, shared burst buffer, per-node local SSD utilization, and
// (minimized) wasted SSD — on a machine whose nodes split into 128 GB and
// 256 GB SSD classes.
//
// Run with: go run ./examples/ssdcasestudy
package main

import (
	"fmt"
	"log"

	"bbsched/internal/core"
	"bbsched/internal/sched"
	"bbsched/internal/sim"
	"bbsched/internal/trace"
)

func main() {
	system := trace.Scale(trace.Theta(), 32)

	base := trace.Generate(trace.GenConfig{System: system, Jobs: 300, Seed: 42})
	base.Name = "Theta-Base"
	moderate, _ := trace.BBFloors(base)
	s2 := trace.ExpandBB(base, "Theta-S2", 0.75, moderate, 44)
	// S6: 50% of jobs request <=128 GB of SSD per node, 50% need the big
	// 256 GB nodes. Half the machine's nodes carry each class.
	s6 := trace.AddSSD(s2, "Theta-S6", trace.S6, 45)

	fourObj := core.NewFourObjective() // node, bb, ssd, -waste; 4x rule
	methods := []sched.Method{
		sched.Baseline{},
		&sched.Constrained{MethodName: "Constrained_SSD", Target: sched.SSDUtil, GA: fourObj.GA},
		fourObj,
	}

	fmt.Printf("workload %s on %d nodes (half 128 GB SSD, half 256 GB)\n\n", s6.Name, s6.System.Cluster.Nodes)
	for _, m := range methods {
		res, err := sim.Run(sim.Config{
			Workload: s6,
			Method:   m,
			Plugin:   core.DefaultPluginConfig(),
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s node %5.1f%%  bb %5.1f%%  ssd %5.1f%%  wasted-ssd %5.1f%%  wait %6.0fs\n",
			m.Name(), res.NodeUsage*100, res.BBUsage*100, res.SSDUsage*100,
			res.WastedSSDFrac*100, res.AvgWaitSec)
	}
	fmt.Println("\nConstrained_SSD maximizes one axis; the four-objective BBSched trades")
	fmt.Println("across all of them (including minimized SSD waste) and delivers the")
	fmt.Println("lowest waits — the balance Fig. 14's Kiviat plots show.")
}
