// Trace replay: compare BBSched against the Slurm-style baseline on a
// synthetic Theta-like workload with heavy burst-buffer demand (S4), the
// scenario where the paper reports its largest gains (up to 41% lower
// average wait).
//
// Run with: go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"

	"bbsched/internal/core"
	"bbsched/internal/sched"
	"bbsched/internal/sim"
	"bbsched/internal/trace"
)

func main() {
	// A 1/32-scale Theta (137 nodes, ~67 TB burst buffer) keeps the demo
	// fast while preserving the job-size mix of a capability system.
	system := trace.Scale(trace.Theta(), 32)

	base := trace.Generate(trace.GenConfig{System: system, Jobs: 400, Seed: 42})
	base.Name = "Theta-Original"
	// S4: 75% of jobs request burst buffer, resampled from large requests
	// (floor calibrated to make the workload burst-buffer-bound).
	_, heavy := trace.BBFloors(base)
	s4 := trace.ExpandBB(base, "Theta-S4", 0.75, heavy, 46)

	for _, w := range []trace.Workload{base, s4} {
		fmt.Printf("== workload %s\n", w.Name)
		for _, method := range []sched.Method{sched.Baseline{}, core.New()} {
			res, err := sim.Run(sim.Config{
				Workload: w,
				Method:   method,
				Plugin:   core.DefaultPluginConfig(),
				Seed:     1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10s node %.1f%%  bb %.1f%%  wait %.0fs  slowdown %.2f\n",
				method.Name(), res.NodeUsage*100, res.BBUsage*100, res.AvgWaitSec, res.AvgSlowdown)
		}
	}
	fmt.Println("\nUnder burst-buffer pressure (S4) BBSched holds utilization and cuts waits;")
	fmt.Println("on the original trace the two are close — matching Figs. 6-8 of the paper.")
}
