// Distributed sweep farm: a coordinator shards a workloads × methods ×
// seeds grid onto HTTP workers, collects per-run Reports, and survives
// worker failures by resuming cells from their last uploaded simulator
// checkpoint.
//
// Everything here runs in one process — a localhost coordinator and a
// few worker goroutines — but the workers only talk HTTP/JSON, so the
// same code spans machines by pointing FarmWorker.Coordinator at a
// remote URL (or running `sweepd -coordinator`). Three acts:
//
//  1. Crash recovery: one worker is rigged to die mid-cell after two
//     checkpoints. Its lease expires, the cell is re-leased, and the
//     retry resumes from the snapshot — the assembled grid is identical
//     to an uninterrupted sweep because checkpoint restore is
//     bit-identical.
//  2. Straggler stealing: one worker is rigged to stall on every event
//     instant. Once the healthy worker drains the rest of the grid it
//     steals a speculative duplicate of the straggler's cell, seeded
//     from the latest checkpoint, and finishes it first — the
//     attempt-gated protocol keeps the result bit-identical either way.
//  3. Content-addressed cache: the same grid re-runs against a warm
//     on-disk cache and every cell is answered from its recipe's
//     SHA-256 without simulating.
//
// Run with: go run ./examples/farm
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"bbsched"
)

func demoGrid() bbsched.FarmGrid {
	system := bbsched.ScaleSystem(bbsched.Cori(), 64)
	return bbsched.FarmGrid{
		Workloads: []bbsched.FarmWorkloadSpec{{
			Name:        "cori-s2",
			Gen:         bbsched.GenConfig{System: system, Jobs: 120, Seed: 42},
			Variant:     "S2",
			VariantSeed: 42,
		}},
		Methods: []bbsched.FarmMethodSpec{
			{Name: "Baseline"},
			{Name: "BBSched", GA: bbsched.GAConfig{Generations: 40, Population: 12, MutationProb: 0.0005}},
		},
		Seeds: []uint64{1, 2},
		Opts:  bbsched.FarmRunOptions{Window: 10, StarvationBound: 50},
		// Snapshot every 25 event instants: a crashed or stolen cell
		// loses at most 25 instants of work.
		CheckpointEvents: 25,
	}
}

// sweep serves the grid on a localhost coordinator, runs the given
// workers against it, and returns the assembled runs plus the
// coordinator's recovery counters.
func sweep(grid bbsched.FarmGrid, workers []*bbsched.FarmWorker, opts ...bbsched.FarmCoordinatorOption) ([]bbsched.SweepRun, bbsched.FarmStats, error) {
	coord, err := bbsched.NewFarmCoordinator(grid, opts...)
	if err != nil {
		return nil, bbsched.FarmStats{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, bbsched.FarmStats{}, err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for _, w := range workers {
		w.Coordinator = "http://" + ln.Addr().String()
		wg.Add(1)
		go func(w *bbsched.FarmWorker) {
			defer wg.Done()
			// The post-Wait cancel below interrupts straggling workers
			// mid-request; that's expected, not a failure.
			if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				log.Printf("%s: %v", w.ID, err)
			}
		}(w)
	}
	runs, err := coord.Wait(context.Background())
	cancel() // release any straggling speculative twin
	wg.Wait()
	return runs, coord.Stats(), err
}

func main() {
	grid := demoGrid()
	fmt.Printf("grid: %d cells\n\n", len(grid.Cells()))

	// Act 1 — crash recovery. Short leases so the rigged crash recovers
	// quickly (real deployments keep the default 60s); speculation off
	// so the recovery below is the lease-expiry path, not a steal.
	var crashed sync.Once
	workers := make([]*bbsched.FarmWorker, 3)
	for i := range workers {
		workers[i] = &bbsched.FarmWorker{ID: fmt.Sprintf("worker-%d", i)}
	}
	// Rig worker-0 to die once, mid-cell, after two checkpoints.
	workers[0].StepHook = func(cell, steps int) error {
		var boom error
		if steps == 60 {
			crashed.Do(func() { boom = errors.New("simulated crash") })
		}
		return boom
	}
	runs, st, err := sweep(grid, workers,
		bbsched.WithFarmLeaseTTL(500*time.Millisecond), bbsched.WithFarmSpeculation(false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crash recovery: %d lease expiries, %d retries, %d checkpoint resumes\n\n",
		st.Expired, st.Retries, st.Resumes)

	// Act 2 — straggler stealing. worker-slow stalls 3ms on every event
	// instant; worker-fast drains the other cells, then steals a
	// speculative duplicate of the straggler's cell from its latest
	// checkpoint. The hour-long TTL proves the win comes from stealing,
	// not lease expiry.
	slow := &bbsched.FarmWorker{ID: "worker-slow", StepHook: func(cell, steps int) error {
		time.Sleep(3 * time.Millisecond)
		return nil
	}}
	fast := &bbsched.FarmWorker{ID: "worker-fast"}
	if _, st, err = sweep(grid, []*bbsched.FarmWorker{slow, fast}, bbsched.WithFarmLeaseTTL(time.Hour)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("straggler: %d speculative steals, %d won by the thief\n\n", st.Steals, st.StealWins)

	// Act 3 — content-addressed cache. A cold pass fills the cache; the
	// re-run answers every cell from disk without simulating.
	dir, err := os.MkdirTemp("", "bbsched-farm-cache")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	for _, pass := range []string{"cold", "warm"} {
		w := &bbsched.FarmWorker{ID: "worker-" + pass, CacheDir: dir}
		if runs, _, err = sweep(grid, []*bbsched.FarmWorker{w}); err != nil {
			log.Fatal(err)
		}
		ws := w.Stats()
		fmt.Printf("cache %s pass: %d cells, %d hits, %d stores\n", pass, ws.Leases, ws.CacheHits, ws.CacheStores)
	}

	fmt.Printf("\n%-10s %-10s %4s  %10s %10s %8s\n", "workload", "method", "seed", "node util", "avg wait", "jobs")
	for _, r := range runs {
		if r.Canceled || r.Result == nil {
			fmt.Printf("%-10s %-10s %4d  canceled\n", r.Workload, r.Method, r.Seed)
			continue
		}
		fmt.Printf("%-10s %-10s %4d  %9.2f%% %9.0fs %8d\n",
			r.Workload, r.Method, r.Seed,
			100*r.Result.NodeUsage, r.Result.AvgWaitSec, r.Result.TotalJobs)
	}
}
