// Distributed sweep farm: a coordinator shards a workloads × methods ×
// seeds grid onto HTTP workers, collects per-run Reports, and survives
// worker failures by resuming cells from their last uploaded simulator
// checkpoint.
//
// Everything here runs in one process — a localhost coordinator and
// three worker goroutines — but the workers only talk HTTP/JSON, so the
// same code spans machines by pointing FarmWorker.Coordinator at a
// remote URL (or running `sweepd -coordinator`). One worker is rigged to
// crash mid-run after its first checkpoint: the coordinator's lease
// expires, the cell is re-leased, and the retry resumes from the
// snapshot — the assembled grid is identical to an uninterrupted sweep
// because checkpoint restore is bit-identical.
//
// Run with: go run ./examples/farm
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"bbsched"
)

func main() {
	system := bbsched.ScaleSystem(bbsched.Cori(), 64)
	grid := bbsched.FarmGrid{
		Workloads: []bbsched.FarmWorkloadSpec{{
			Name:        "cori-s2",
			Gen:         bbsched.GenConfig{System: system, Jobs: 120, Seed: 42},
			Variant:     "S2",
			VariantSeed: 42,
		}},
		Methods: []bbsched.FarmMethodSpec{
			{Name: "Baseline"},
			{Name: "BBSched", GA: bbsched.GAConfig{Generations: 40, Population: 12, MutationProb: 0.0005}},
		},
		Seeds: []uint64{1, 2},
		Opts:  bbsched.FarmRunOptions{Window: 10, StarvationBound: 50},
		// Snapshot every 25 event instants: a crashed cell loses at most
		// 25 instants of work.
		CheckpointEvents: 25,
	}

	// Short leases so the rigged crash below recovers quickly; real
	// deployments keep the default 60s.
	coord, err := bbsched.NewFarmCoordinator(grid, bbsched.WithFarmLeaseTTL(500*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("coordinator on %s: %d cells\n", url, len(grid.Cells()))

	var crashed sync.Once
	var wg sync.WaitGroup
	for i := range 3 {
		w := &bbsched.FarmWorker{Coordinator: url, ID: fmt.Sprintf("worker-%d", i)}
		if i == 0 {
			// Rig worker-0 to die once, mid-cell, after two checkpoints.
			w.StepHook = func(cell, steps int) error {
				var boom error
				if steps == 60 {
					crashed.Do(func() { boom = errors.New("simulated crash") })
				}
				return boom
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(context.Background()); err != nil {
				log.Printf("%s: %v", w.ID, err)
			}
		}()
	}

	runs, err := coord.Wait(context.Background())
	wg.Wait()
	if err != nil {
		log.Fatal(err)
	}

	st := coord.Stats()
	fmt.Printf("recovery: %d lease expiries, %d retries, %d checkpoint resumes\n\n",
		st.Expired, st.Retries, st.Resumes)
	fmt.Printf("%-10s %-10s %4s  %10s %10s %8s\n", "workload", "method", "seed", "node util", "avg wait", "jobs")
	for _, r := range runs {
		if r.Canceled || r.Result == nil {
			fmt.Printf("%-10s %-10s %4d  canceled\n", r.Workload, r.Method, r.Seed)
			continue
		}
		fmt.Printf("%-10s %-10s %4d  %9.2f%% %9.0fs %8d\n",
			r.Workload, r.Method, r.Seed,
			100*r.Result.NodeUsage, r.Result.AvgWaitSec, r.Result.TotalJobs)
	}
}
