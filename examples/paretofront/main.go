// Pareto exploration: how the genetic solver's front compares to the
// exact (exhaustive) front on a real scheduling window, and how solution
// quality responds to the G and P parameters — the analysis behind
// Figs. 2 and 4.
//
// Run with: go run ./examples/paretofront
package main

import (
	"fmt"
	"log"
	"time"

	"bbsched/internal/cluster"
	"bbsched/internal/moo"
	"bbsched/internal/rng"
	"bbsched/internal/sched"
	"bbsched/internal/trace"
)

func main() {
	system := trace.Scale(trace.Theta(), 32)
	// A burst-buffer-heavy (S4-like) window: node and BB demands compete,
	// so the exact Pareto front has genuine trade-off points.
	base := trace.Generate(trace.GenConfig{System: system, Jobs: 16, Seed: 11})
	_, heavy := trace.BBFloors(base)
	w := trace.ExpandBB(base, "window", 0.75, heavy, 13)
	machine := cluster.MustNew(system.Cluster)

	problem := sched.NewSelectionProblem(w.Jobs, machine.Snapshot(), sched.TwoObjectives())

	// Exact reference front via 2^16 enumeration.
	t0 := time.Now()
	ref, err := moo.SolveExhaustive(problem)
	if err != nil {
		log.Fatal(err)
	}
	exact := time.Since(t0)
	fmt.Printf("exhaustive: %d Pareto points in %v\n", len(ref), exact)

	// GA fronts at increasing effort.
	for _, g := range []int{50, 200, 500} {
		cfg := moo.DefaultGAConfig()
		cfg.Generations = g
		t0 = time.Now()
		front, err := moo.SolveGA(problem, cfg, rng.New(3))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("GA G=%-4d: %2d points, GD=%.2f, %v\n",
			g, len(front), moo.GenerationalDistance(front, ref), time.Since(t0))
	}

	fmt.Println("\nexact front (nodes, burst-buffer GB):")
	for _, s := range ref {
		fmt.Printf("  (%6.0f, %8.0f)\n", s.Objectives[0], s.Objectives[1])
	}
	fmt.Println("\nGD shrinks toward zero as G grows while the GA stays orders of")
	fmt.Println("magnitude cheaper than enumeration — the trade-off Fig. 4 tunes.")
}
