// Command multiresource demonstrates the N-dimensional resource model: a
// 3-resource cluster — compute nodes, a shared burst buffer, and a
// facility power budget — that the 2-dimension engine could not express.
//
// The power budget is an ordinary pool-style extra resource dimension
// (cluster.ResourceSpec): jobs draw nodes × [1, 4] kW for their lifetime
// and release the draw with their nodes. BBSched picks up one utilization
// objective per dimension from the cluster's resource spec
// (sched.ObjectivesFor via the registry), so the MOO selection trades off
// node, burst-buffer, AND power utilization; the baseline only walks the
// queue but still respects the power cap through feasibility.
//
// Run with: go run ./examples/multiresource
package main

import (
	"context"
	"fmt"
	"log"

	bbsched "bbsched"
)

func main() {
	// A Theta-like machine at 1/64 scale with a deliberately tight
	// 150 kW power budget (~2.2 kW/node average draw available).
	sys := bbsched.ScaleSystem(bbsched.Theta(), 64)
	sys = bbsched.WithExtraResource(sys, bbsched.ResourceSpec{
		Name: "power_kw", Capacity: 150, Unit: "kW",
	})

	base := bbsched.Generate(bbsched.GenConfig{System: sys, Jobs: 200, Seed: 42})
	base.Name = "Theta/64-Original"
	w, err := bbsched.ApplyVariant(base, "S2", 42)
	if err != nil {
		log.Fatal(err)
	}
	// Every job draws 1–4 kW per node (dimension 0 = power_kw).
	w = bbsched.AddExtraDemand(w, "Theta/64-S2+power", 0, 1, 4, 1.0, 42)

	ga := bbsched.GAConfig{Generations: 60, Population: 12, MutationProb: 0.0005}
	fmt.Printf("workload %s on %d nodes, %d GB burst buffer, %d kW power budget\n\n",
		w.Name, sys.Cluster.Nodes, sys.Cluster.BurstBufferGB, sys.Cluster.Extra[0].Capacity)

	fmt.Printf("%-12s %10s %10s %10s %12s\n", "method", "node use", "bb use", "power use", "avg wait")
	for _, name := range []string{"Baseline", "BBSched"} {
		// NewMethodForCluster generates one utilization objective per
		// resource dimension from the cluster's spec.
		m, err := bbsched.NewMethodForCluster(name, ga, w.System.Cluster, false)
		if err != nil {
			log.Fatal(err)
		}
		s, err := bbsched.NewSimulator(w, m, bbsched.WithSeed(1))
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		power := 0.0
		if len(res.ExtraUsage) > 0 {
			power = res.ExtraUsage[0].Usage
		}
		fmt.Printf("%-12s %9.2f%% %9.2f%% %9.2f%% %11.0fs\n",
			name, res.NodeUsage*100, res.BBUsage*100, power*100, res.AvgWaitSec)
	}
}
