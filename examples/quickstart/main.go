// Quickstart: schedule the paper's Table 1 example with BBSched.
//
// Builds the five-job window on a 100-node / 100 TB machine, solves the
// two-objective MOO problem, prints the Pareto set, and shows which
// combination the §3.2.4 decision rule dispatches.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bbsched/internal/cluster"
	"bbsched/internal/core"
	"bbsched/internal/job"
	"bbsched/internal/rng"
	"bbsched/internal/sched"
)

func main() {
	// A system with 100 nodes and 100 TB of burst buffer (Table 1 uses TB
	// as the burst-buffer unit).
	machine := cluster.MustNew(cluster.Config{
		Name:          "example",
		Nodes:         100,
		BurstBufferGB: 100,
	})

	// The five waiting jobs of Table 1(a): (nodes, burst buffer).
	window := []*job.Job{
		job.MustNew(1, 0, 3600, 3600, job.NewDemand(80, 20, 0)),
		job.MustNew(2, 1, 3600, 3600, job.NewDemand(10, 85, 0)),
		job.MustNew(3, 2, 3600, 3600, job.NewDemand(40, 5, 0)),
		job.MustNew(4, 3, 3600, 3600, job.NewDemand(10, 0, 0)),
		job.MustNew(5, 4, 3600, 3600, job.NewDemand(20, 0, 0)),
	}

	// BBSched with the paper's defaults (G=500, P=20, p_m=0.05%, 2x
	// trade-off rule).
	bb := core.New()
	ctx := &sched.Context{
		Now:    10,
		Window: window,
		Snap:   machine.Snapshot(),
		Totals: sched.TotalsOf(machine.Config()),
		Rand:   rng.New(7),
	}

	front, err := bb.ParetoFront(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pareto set (node util %, burst buffer util %):")
	for _, s := range front {
		fmt.Printf("  select %v -> (%.0f%%, %.0f%%)\n",
			names(window, sched.Selected(s.Genome)), s.Objectives[0], s.Objectives[1])
	}

	picked, err := bb.Select(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBBSched dispatches: %v\n", names(window, picked))
	fmt.Println("(the decision rule trades 20 points of node utilization for 70 of burst buffer)")
}

func names(window []*job.Job, idx []int) []string {
	out := make([]string, len(idx))
	for i, k := range idx {
		out[i] = fmt.Sprintf("J%d", window[k].ID)
	}
	return out
}
