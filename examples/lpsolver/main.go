// LP window solver: the pluggable-solver layer in action — the same
// scheduling window solved by the paper's genetic algorithm and by the
// matrix-free LP-relaxation backend (restarted Halpern PDHG + randomized
// rounding), then a full simulation driven end-to-end by an LP-backed
// method.
//
// The LP backend relaxes the 0/1 window-selection knapsack to x ∈ [0,1]ⁿ,
// solves the relaxation with first-order primal-dual iterations (no
// matrix factorization, just demand-column mat-vecs), and rounds back to
// a feasible selection — orders of magnitude cheaper than evolving a
// population on large windows, at near-identical selection quality for
// scalarized objectives.
//
// Run with: go run ./examples/lpsolver
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bbsched"
)

func main() {
	// A 96-job scheduling window on a scaled Theta against a half-loaded
	// machine, scored by node utilization under the other resources'
	// constraints (the Constrained_CPU formulation).
	system := bbsched.ScaleSystem(bbsched.Theta(), 8)
	window := bbsched.Generate(bbsched.GenConfig{System: system, Jobs: 96, Seed: 7}).Jobs
	half := system.Cluster
	half.Nodes /= 2
	half.BurstBufferGB /= 2
	machine, err := bbsched.NewCluster(half)
	if err != nil {
		log.Fatal(err)
	}
	problem := bbsched.NewSelectionProblem(window, machine.Snapshot(), []bbsched.Objective{bbsched.NodeUtil})

	// The fractional relaxation, straight from the PDHG core.
	form, ok := bbsched.LinearizeProblem(problem)
	if !ok {
		log.Fatal("selection problem has no linear form")
	}
	x, stats := bbsched.SolveLPRelaxation(form, bbsched.LPConfig{})
	frac := 0
	for _, xi := range x {
		if xi > 0.01 && xi < 0.99 {
			frac++
		}
	}
	fmt.Printf("LP relaxation: %d PDHG iters, %d restarts, gap %.1e, bound %.0f nodes (%d fractional of %d jobs)\n\n",
		stats.Iters, stats.Restarts, stats.Gap, stats.Dual, frac, len(x))

	// The same window through both Solver backends.
	for _, solver := range []bbsched.Solver{
		bbsched.NewGASolver(bbsched.DefaultGAConfig()),
		bbsched.NewLPSolver(bbsched.DefaultLPConfig()),
	} {
		ev := bbsched.NewEvaluator(problem)
		start := time.Now()
		front, err := solver.Solve(ev, bbsched.SolverOptions{Rand: bbsched.NewRand(7)})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		best := front[0].Objectives[0]
		for _, s := range front {
			if s.Objectives[0] > best {
				best = s.Objectives[0]
			}
		}
		fmt.Printf("%-3s backend: best node utilization %4.0f / %d free, %3d selected, %8v\n",
			solver.Name(), best, half.Nodes, front[0].Genome.OnesCount(), elapsed.Round(10*time.Microsecond))
	}

	// End to end: the registry's LP-backed weighted method driving a full
	// simulation (what `bbsim -method Weighted_LP` runs).
	workload := bbsched.Generate(bbsched.GenConfig{System: system, Jobs: 300, Seed: 11})
	workload.Name = "Theta/8-lpsolver"
	method, err := bbsched.NewMethod("Weighted_LP", bbsched.DefaultGAConfig(), false)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := bbsched.NewSimulator(workload, method, bbsched.WithSeed(11))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s under %s [%s]: node %.1f%%, bb %.1f%%, avg wait %.0fs, %d decisions at %v avg\n",
		workload.Name, res.Method, bbsched.SolverNameOf(method),
		res.NodeUsage*100, res.BBUsage*100, res.AvgWaitSec, res.SchedInvocations, res.AvgDecisionTime)
}
