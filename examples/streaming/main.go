// Streaming workloads: replay a trace far larger than memory through the
// pull-based JobSource pipeline. The generator emits jobs one at a time,
// the variant combinator expands burst-buffer demand on the fly, the
// simulator buffers only a bounded arrival look-ahead, and metrics
// accumulate in constant space (running sums + P² percentile sketches) —
// peak memory is set by queue depth, not trace length.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"runtime"

	"bbsched"
)

func main() {
	system := bbsched.ScaleSystem(bbsched.Theta(), 32)

	// A streaming source: 200k generated jobs, never materialized. Swap in
	// bbsched.OpenSWF("thetalog.swf", bbsched.SWFOptions{}) or
	// bbsched.OpenCSV("trace.csv") to replay a real log the same way.
	jobs := 200_000
	src := bbsched.GenSource(bbsched.GenConfig{
		System: system, Jobs: jobs, Seed: 42, TargetLoad: 0.95,
	})

	// Streaming counterpart of the paper's S2 expansion (75% of jobs
	// request burst buffer), derived without a materialized trace.
	src, system, name, err := bbsched.ApplyVariantSource(src, system, "S2", 42)
	if err != nil {
		log.Fatal(err)
	}

	// The workload shell carries only the name and machine; jobs arrive
	// online via WithSource. A generated source knows its horizon, but
	// file streams do not, so measure the full run explicitly.
	shell := bbsched.Workload{Name: name, System: system}
	s, err := bbsched.NewSimulator(shell, bbsched.Baseline{},
		bbsched.WithSource(src),
		bbsched.WithStreamingMetrics(),
		bbsched.WithMeasurement(0, 0),
		bbsched.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	var peak uint64
	var ms runtime.MemStats
	steps := 0
	for {
		more, err := s.Step()
		if err != nil {
			log.Fatal(err)
		}
		if !more {
			break
		}
		if steps++; steps%50_000 == 0 {
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
	}
	res, err := s.Result()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:   %s (%d jobs, streamed)\n", res.Workload, res.TotalJobs)
	fmt.Printf("node usage: %.1f%%   bb usage: %.1f%%\n", res.NodeUsage*100, res.BBUsage*100)
	fmt.Printf("avg wait:   %.0fs   p50/p90/p99: %.0f/%.0f/%.0fs\n",
		res.AvgWaitSec, res.WaitP50Sec, res.WaitP90Sec, res.WaitP99Sec)
	fmt.Printf("peak heap:  %.1f MB for %d jobs — bounded by queue depth, not trace length\n",
		float64(peak)/(1<<20), jobs)
}
