// Sweep: compare scheduling methods across solver seeds in one parallel,
// deterministic pass.
//
// Builds the Theta-S2 burst-buffer expansion workload, instantiates three
// methods from the shared registry, and drives the methods × seeds grid
// through RunSweep on a worker pool — the same per-run Reports a serial
// loop would produce, in the same order, in a fraction of the wall-clock
// time. A per-run Observer counts scheduling passes live to show the
// engine's callback surface.
//
// Run with: go run ./examples/sweep
package main

import (
	"context"
	"fmt"
	"log"
	"sync/atomic"

	"bbsched"
)

// passCounter tallies scheduling passes across all runs, live.
type passCounter struct {
	bbsched.NopObserver
	passes atomic.Int64
}

func (c *passCounter) OnSchedule(bbsched.ScheduleInfo) { c.passes.Add(1) }

func main() {
	system := bbsched.ScaleSystem(bbsched.Theta(), 64)
	base := bbsched.Generate(bbsched.GenConfig{System: system, Jobs: 150, Seed: 42})
	base.Name = system.Cluster.Name + "-Original"
	workload, err := bbsched.ApplyVariant(base, "S2", 42)
	if err != nil {
		log.Fatal(err)
	}

	// A light solver configuration keeps the example fast; drop this for
	// the paper's G=500, P=20 defaults.
	ga := bbsched.GAConfig{Generations: 80, Population: 16, MutationProb: 0.005}
	var methods []bbsched.Method
	for _, name := range []string{"Baseline", "Bin_Packing", "BBSched"} {
		m, err := bbsched.NewMethod(name, ga, bbsched.IsSSDVariant("S2"))
		if err != nil {
			log.Fatal(err)
		}
		methods = append(methods, m)
	}

	counter := &passCounter{}
	runs, err := bbsched.RunSweep(context.Background(), bbsched.Sweep{
		Workloads: []bbsched.Workload{workload},
		Methods:   methods,
		Seeds:     []uint64{1, 2},
		Options:   []bbsched.SimOption{bbsched.WithWindow(20, 50)},
		PerRun: func(bbsched.Workload, bbsched.Method, uint64) []bbsched.SimOption {
			return []bbsched.SimOption{bbsched.WithObserver(counter)}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s: %d jobs, %d runs, %d scheduling passes\n\n",
		workload.Name, len(workload.Jobs), len(runs), counter.passes.Load())
	fmt.Printf("%-12s %-5s %9s %9s %10s %9s\n", "method", "seed", "node use", "bb use", "avg wait", "slowdown")
	for _, r := range runs {
		fmt.Printf("%-12s %-5d %8.2f%% %8.2f%% %9.0fs %9.2f\n",
			r.Method, r.Seed, r.Result.NodeUsage*100, r.Result.BBUsage*100,
			r.Result.AvgWaitSec, r.Result.AvgSlowdown)
	}

	// The grid is deterministic: averaging seeds per method is stable
	// output, not luck.
	fmt.Println()
	for _, m := range methods {
		var wait float64
		n := 0
		for _, r := range runs {
			if r.Method == m.Name() {
				wait += r.Result.AvgWaitSec
				n++
			}
		}
		fmt.Printf("%-12s mean wait over %d seeds: %.0fs\n", m.Name(), n, wait/float64(n))
	}
}
