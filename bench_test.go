// Benchmarks: one per paper table/figure (see DESIGN.md's per-experiment
// index) plus ablations of the design choices BBSched makes. Domain
// metrics (generational distance, average wait) are attached via
// b.ReportMetric next to the timing numbers.
//
// The full regeneration of each artifact's rows is cmd/experiments; these
// benches time the computational core of each artifact at laptop scale.
package bbsched_test

import (
	"fmt"
	"testing"

	"bbsched"
	"bbsched/internal/experiments"
	"bbsched/internal/moo"
	"bbsched/internal/rng"
	"bbsched/internal/sched"
	"bbsched/internal/sim"
	"bbsched/internal/trace"
)

// benchGA keeps sim-based benches at a few hundred milliseconds per
// iteration; solver-focused benches use the paper's full configuration.
func benchGA() moo.GAConfig {
	return moo.GAConfig{Generations: 200, Population: 20, MutationProb: 0.0005}
}

func benchSystem() trace.SystemModel { return trace.Scale(trace.Theta(), 32) }

// benchWorkload returns a Theta-S4-like trace: heavy burst-buffer demand,
// the regime where method differences are largest.
func benchWorkload(jobs int) trace.Workload {
	sys := benchSystem()
	base := trace.Generate(trace.GenConfig{System: sys, Jobs: jobs, Seed: 42})
	base.Name = "Theta-S4"
	_, heavy := trace.BBFloors(base)
	return trace.ExpandBB(base, "Theta-S4", 0.75, heavy, 46)
}

func benchSim(b *testing.B, w trace.Workload, m bbsched.Method) *sim.Result {
	b.Helper()
	res, err := sim.Run(sim.Config{Workload: w, Method: m, Plugin: bbsched.DefaultPluginConfig(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkSolveGAWindow times the GA on real window-selection problems
// (the production hot path: packed genomes + memoized evaluation + pooled
// cluster scratch) at the paper's w=20 and the §4.4 w=50. The solver-level
// before/after comparison lives in internal/moo (BenchmarkSolveGA vs
// BenchmarkSolveGAReference).
func BenchmarkSolveGAWindow(b *testing.B) {
	sys := benchSystem()
	cl, err := bbsched.NewCluster(sys.Cluster)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{20, 50} {
		win := trace.Generate(trace.GenConfig{System: sys, Jobs: w, Seed: 7}).Jobs
		p := sched.NewSelectionProblem(win, cl.Snapshot(), sched.TwoObjectives())
		ev := moo.NewEvaluator(p)
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev.Reset(p)
				if _, err := moo.SolveGA(ev, moo.DefaultGAConfig(), rng.New(7)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1Illustrative times one full BBSched decision (GA with
// paper parameters + decision rule) on the Table 1 window.
func BenchmarkTable1Illustrative(b *testing.B) {
	jobs := experiments.Table1Jobs()
	cl := experiments.Table1Cluster()
	method := bbsched.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := &sched.Context{
			Now: 10, Window: jobs, Snap: cl.Snapshot(),
			Totals: sched.TotalsOf(cl.Config()), Rand: rng.New(uint64(i)),
		}
		if _, err := method.Select(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2SolverScaling times exhaustive vs GA solving as the window
// grows — the Fig. 2 exponential-vs-flat contrast.
func BenchmarkFig2SolverScaling(b *testing.B) {
	sys := benchSystem()
	cl, err := bbsched.NewCluster(sys.Cluster)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{5, 10, 15, 20} {
		win := trace.Generate(trace.GenConfig{System: sys, Jobs: w, Seed: 7}).Jobs
		p := sched.NewSelectionProblem(win, cl.Snapshot(), sched.TwoObjectives())
		b.Run(fmt.Sprintf("exhaustive/w=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := moo.SolveExhaustive(p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("genetic/w=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := moo.SolveGA(p, moo.DefaultGAConfig(), rng.New(uint64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4ParameterSelection times the GA at the Fig. 4 population
// sizes and reports the generational distance against the exact front.
func BenchmarkFig4ParameterSelection(b *testing.B) {
	sys := benchSystem()
	cl, err := bbsched.NewCluster(sys.Cluster)
	if err != nil {
		b.Fatal(err)
	}
	win := trace.Generate(trace.GenConfig{System: sys, Jobs: 16, Seed: 11}).Jobs
	p := sched.NewSelectionProblem(win, cl.Snapshot(), sched.TwoObjectives())
	ref, err := moo.SolveExhaustive(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, pop := range []int{20, 30, 50} {
		b.Run(fmt.Sprintf("P=%d/G=500", pop), func(b *testing.B) {
			cfg := moo.DefaultGAConfig()
			cfg.Population = pop
			var gd float64
			for i := 0; i < b.N; i++ {
				front, err := moo.SolveGA(p, cfg, rng.New(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				gd += moo.GenerationalDistance(front, ref)
			}
			b.ReportMetric(gd/float64(b.N), "GD")
		})
	}
}

// BenchmarkFig5Histograms times building the burst-buffer request
// histograms for the ten-workload matrix.
func BenchmarkFig5Histograms(b *testing.B) {
	cori := trace.Scale(trace.Cori(), 64)
	theta := benchSystem()
	ws := trace.Matrix(cori, theta, 400, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			h := trace.BBHistogram(w.Jobs, w.System.MaxBBRequestGB/20)
			if h.NumJobs() == 0 {
				b.Fatal("empty histogram")
			}
		}
	}
}

// matrixFigureBench is the shared core of the Figs. 6/7/8/12/13 benches:
// one simulation of the S4-like workload per method, reporting the
// figure's metric.
func matrixFigureBench(b *testing.B, metric string, get func(*sim.Result) float64) {
	w := benchWorkload(120)
	methods := []bbsched.Method{sched.Baseline{}, sched.BinPacking{}, benchBBSched()}
	for _, m := range methods {
		b.Run(m.Name(), func(b *testing.B) {
			var v float64
			for i := 0; i < b.N; i++ {
				v = get(benchSim(b, w, m))
			}
			b.ReportMetric(v, metric)
		})
	}
}

func benchBBSched() *bbsched.BBSched {
	m := bbsched.New()
	m.GA = benchGA()
	return m
}

// BenchmarkFig6NodeUsage regenerates the Fig. 6 metric per method.
func BenchmarkFig6NodeUsage(b *testing.B) {
	matrixFigureBench(b, "node_usage", func(r *sim.Result) float64 { return r.NodeUsage })
}

// BenchmarkFig7BBUsage regenerates the Fig. 7 metric per method.
func BenchmarkFig7BBUsage(b *testing.B) {
	matrixFigureBench(b, "bb_usage", func(r *sim.Result) float64 { return r.BBUsage })
}

// BenchmarkFig8WaitTime regenerates the Fig. 8 metric per method.
func BenchmarkFig8WaitTime(b *testing.B) {
	matrixFigureBench(b, "avg_wait_s", func(r *sim.Result) float64 { return r.AvgWaitSec })
}

// BenchmarkFig9BreakdownSize times the by-size wait breakdown (Fig. 9).
func BenchmarkFig9BreakdownSize(b *testing.B) {
	w := benchWorkload(120)
	for i := 0; i < b.N; i++ {
		r := benchSim(b, w, benchBBSched())
		if len(r.WaitBySize) == 0 {
			b.Fatal("no size breakdown")
		}
	}
}

// BenchmarkFig10BreakdownBB times the by-BB-request breakdown (Fig. 10).
func BenchmarkFig10BreakdownBB(b *testing.B) {
	w := benchWorkload(120)
	for i := 0; i < b.N; i++ {
		r := benchSim(b, w, benchBBSched())
		if len(r.WaitByBB) == 0 {
			b.Fatal("no BB breakdown")
		}
	}
}

// BenchmarkFig11BreakdownRuntime times the by-runtime breakdown (Fig. 11).
func BenchmarkFig11BreakdownRuntime(b *testing.B) {
	w := benchWorkload(120)
	for i := 0; i < b.N; i++ {
		r := benchSim(b, w, benchBBSched())
		if len(r.WaitByRuntime) == 0 {
			b.Fatal("no runtime breakdown")
		}
	}
}

// BenchmarkFig12Slowdown regenerates the Fig. 12 metric per method.
func BenchmarkFig12Slowdown(b *testing.B) {
	matrixFigureBench(b, "avg_slowdown", func(r *sim.Result) float64 { return r.AvgSlowdown })
}

// BenchmarkFig13Kiviat times the holistic Kiviat summary over a small
// method set (Fig. 13's normalization + polygon area).
func BenchmarkFig13Kiviat(b *testing.B) {
	w := benchWorkload(120)
	methods := []bbsched.Method{sched.Baseline{}, sched.BinPacking{}, benchBBSched()}
	results := make([]*sim.Result, len(methods))
	for i, m := range methods {
		results[i] = benchSim(b, w, m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		area := kiviatAreas(results)
		// Min-max normalization zeroes the worst method's axes, so any
		// individual area may legitimately be 0; the comparison is only
		// degenerate if every polygon collapses.
		best := 0.0
		for _, a := range area {
			if a > best {
				best = a
			}
		}
		if best <= 0 {
			b.Fatal("degenerate kiviat comparison: all areas zero")
		}
	}
}

func kiviatAreas(results []*sim.Result) []float64 {
	axes := make([][]float64, 4)
	for _, r := range results {
		axes[0] = append(axes[0], r.NodeUsage)
		axes[1] = append(axes[1], r.BBUsage)
		axes[2] = append(axes[2], 1/(1+r.AvgWaitSec))
		axes[3] = append(axes[3], 1/(1+r.AvgSlowdown))
	}
	norm := make([][]float64, 4)
	for i := range axes {
		norm[i] = normalize01(axes[i])
	}
	out := make([]float64, len(results))
	for i := range results {
		radii := []float64{norm[0][i], norm[1][i], norm[2][i], norm[3][i]}
		s := 0.0
		for k := 0; k < 4; k++ {
			s += radii[k] * radii[(k+1)%4]
		}
		out[i] = 0.5 * s // sin(π/2) = 1
	}
	return out
}

func normalize01(vals []float64) []float64 {
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		if hi == lo {
			out[i] = 1
		} else {
			out[i] = (v - lo) / (hi - lo)
		}
	}
	return out
}

// BenchmarkTable3WindowSensitivity times BBSched runs at the Table 3
// window sizes and reports node usage.
func BenchmarkTable3WindowSensitivity(b *testing.B) {
	w := benchWorkload(120)
	for _, win := range []int{10, 20, 50} {
		b.Run(fmt.Sprintf("w=%d", win), func(b *testing.B) {
			var usage float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					Workload: w, Method: benchBBSched(),
					Plugin: bbsched.PluginConfig{WindowSize: win, StarvationBound: 50},
					Seed:   1,
				})
				if err != nil {
					b.Fatal(err)
				}
				usage = res.NodeUsage
			}
			b.ReportMetric(usage, "node_usage")
		})
	}
}

// BenchmarkFig14SSDCaseStudy times the four-objective §5 configuration.
func BenchmarkFig14SSDCaseStudy(b *testing.B) {
	sys := benchSystem()
	base := trace.Generate(trace.GenConfig{System: sys, Jobs: 100, Seed: 42})
	base.Name = "Theta-S2"
	moderate, _ := trace.BBFloors(base)
	s2 := trace.ExpandBB(base, "Theta-S2", 0.75, moderate, 44)
	s6 := trace.AddSSD(s2, "Theta-S6", trace.S6, 45)
	method := bbsched.NewFourObjective()
	method.GA = benchGA()
	b.ResetTimer()
	var wasted float64
	for i := 0; i < b.N; i++ {
		r := benchSim(b, s6, method)
		wasted = r.WastedSSDFrac
	}
	b.ReportMetric(wasted, "wasted_ssd_frac")
}

// BenchmarkOverheadPerDecision times one scheduling decision per method at
// w=50 — the §4.4 overhead numbers.
func BenchmarkOverheadPerDecision(b *testing.B) {
	sys := benchSystem()
	cl, err := bbsched.NewCluster(sys.Cluster)
	if err != nil {
		b.Fatal(err)
	}
	win := trace.Generate(trace.GenConfig{System: sys, Jobs: 50, Seed: 13}).Jobs
	totals := sched.TotalsOf(sys.Cluster)
	heavy := moo.DefaultGAConfig()
	heavy.Generations = 2000
	bbHeavy := bbsched.New()
	bbHeavy.GA = heavy
	methods := []bbsched.Method{sched.Baseline{}, sched.BinPacking{}, bbsched.New(), bbHeavy}
	names := []string{"Baseline", "Bin_Packing", "BBSched_G500", "BBSched_G2000"}
	for i, m := range methods {
		b.Run(names[i], func(b *testing.B) {
			for k := 0; k < b.N; k++ {
				ctx := &sched.Context{Now: 0, Window: win, Snap: cl.Snapshot(), Totals: totals, Rand: rng.New(uint64(k))}
				if _, err := m.Select(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSelection compares the paper's age-based GA selection
// against NSGA-II crowding on front quality (GD, lower is better).
func BenchmarkAblationSelection(b *testing.B) {
	sys := benchSystem()
	cl, err := bbsched.NewCluster(sys.Cluster)
	if err != nil {
		b.Fatal(err)
	}
	win := trace.Generate(trace.GenConfig{System: sys, Jobs: 16, Seed: 17}).Jobs
	p := sched.NewSelectionProblem(win, cl.Snapshot(), sched.TwoObjectives())
	ref, err := moo.SolveExhaustive(p)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		sel  moo.SelectionPolicy
	}{{"age_based", moo.AgeBased}, {"crowding", moo.Crowding}} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := moo.DefaultGAConfig()
			cfg.Selection = tc.sel
			var gd float64
			for i := 0; i < b.N; i++ {
				front, err := moo.SolveGA(p, cfg, rng.New(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				gd += moo.GenerationalDistance(front, ref)
			}
			b.ReportMetric(gd/float64(b.N), "GD")
		})
	}
}

// BenchmarkAblationTradeoff sweeps the decision rule's trade-off factor,
// reporting burst-buffer usage (the factor controls how readily node
// utilization is traded for it).
func BenchmarkAblationTradeoff(b *testing.B) {
	w := benchWorkload(120)
	for _, factor := range []float64{1, 2, 4, 1e9} {
		b.Run(fmt.Sprintf("factor=%g", factor), func(b *testing.B) {
			var bbUsage float64
			for i := 0; i < b.N; i++ {
				m := benchBBSched()
				m.TradeoffFactor = factor
				r := benchSim(b, w, m)
				bbUsage = r.BBUsage
			}
			b.ReportMetric(bbUsage, "bb_usage")
		})
	}
}

// BenchmarkAblationStarvation sweeps the §3.1 starvation bound, reporting
// the maximum-bucket average wait (large jobs suffer without forcing).
func BenchmarkAblationStarvation(b *testing.B) {
	w := benchWorkload(120)
	for _, bound := range []int{0, 10, 50} {
		b.Run(fmt.Sprintf("bound=%d", bound), func(b *testing.B) {
			var wait float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					Workload: w, Method: benchBBSched(),
					Plugin: bbsched.PluginConfig{WindowSize: 20, StarvationBound: bound},
					Seed:   1,
				})
				if err != nil {
					b.Fatal(err)
				}
				wait = res.AvgWaitSec
			}
			b.ReportMetric(wait, "avg_wait_s")
		})
	}
}

// BenchmarkAblationAdaptiveFactor compares the static 2x decision rule
// against the adaptive controller (§3.2.4 future work) on the S4 workload.
func BenchmarkAblationAdaptiveFactor(b *testing.B) {
	w := benchWorkload(120)
	for _, tc := range []struct {
		name  string
		build func() bbsched.Method
	}{
		{"static_2x", func() bbsched.Method { return benchBBSched() }},
		{"adaptive", func() bbsched.Method { return bbsched.NewAdaptive(benchBBSched()) }},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var wait float64
			for i := 0; i < b.N; i++ {
				r := benchSim(b, w, tc.build())
				wait = r.AvgWaitSec
			}
			b.ReportMetric(wait, "avg_wait_s")
		})
	}
}

// BenchmarkAblationWindowPolicy compares the paper's fixed w=20 window to
// the queue-length-adaptive policy (§3.1's dynamic option).
func BenchmarkAblationWindowPolicy(b *testing.B) {
	w := benchWorkload(120)
	for _, tc := range []struct {
		name   string
		plugin bbsched.PluginConfig
	}{
		{"fixed_20", bbsched.DefaultPluginConfig()},
		{"adaptive", bbsched.PluginConfig{WindowPolicy: bbsched.NewAdaptiveWindow(), StarvationBound: 50}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var wait float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{Workload: w, Method: benchBBSched(), Plugin: tc.plugin, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				wait = res.AvgWaitSec
			}
			b.ReportMetric(wait, "avg_wait_s")
		})
	}
}

// BenchmarkAblationStageOut toggles Slurm-style stage-out (BB held past
// job end) and reports burst-buffer usage — drains raise BB pressure.
func BenchmarkAblationStageOut(b *testing.B) {
	base := benchWorkload(120)
	staged := trace.WithStageOut(base, 20) // 20 GB/s drain
	for _, tc := range []struct {
		name string
		w    trace.Workload
	}{{"no_stageout", base}, {"stageout_20GBps", staged}} {
		b.Run(tc.name, func(b *testing.B) {
			var bbUsage float64
			for i := 0; i < b.N; i++ {
				r := benchSim(b, tc.w, benchBBSched())
				bbUsage = r.BBUsage
			}
			b.ReportMetric(bbUsage, "bb_usage")
		})
	}
}

// BenchmarkAblationBackfill toggles EASY backfilling under BBSched.
func BenchmarkAblationBackfill(b *testing.B) {
	w := benchWorkload(120)
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"easy_on", false}, {"easy_off", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var wait float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(sim.Config{
					Workload: w, Method: benchBBSched(),
					Plugin:          bbsched.DefaultPluginConfig(),
					DisableBackfill: tc.disable,
					Seed:            1,
				})
				if err != nil {
					b.Fatal(err)
				}
				wait = res.AvgWaitSec
			}
			b.ReportMetric(wait, "avg_wait_s")
		})
	}
}
