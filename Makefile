# BBSched build/test/bench entry points — the same commands CI runs.

GO ?= go

.PHONY: all build test test-full race bench bench-smoke bench-json bench-check sweep-smoke farm-smoke fuzz-smoke cover-gate lint fmt vet staticcheck clean

all: lint build test

build:
	$(GO) build ./...

# Short suite: what the CI test job runs (well under 2 minutes).
test:
	$(GO) test -short ./...

# Full suite, including the ~minute-long replicate/claims experiments.
test-full:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Full benchmark pass (one iteration each; for timing runs raise -benchtime).
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# The solver perf harness: new bitset/memoized GA vs the frozen seed
# implementation on the same fixed-seed instances.
bench-smoke:
	$(GO) test -bench=SolveGA -benchtime=1x -run='^$$' ./internal/moo

bench-solver:
	$(GO) test -bench='^BenchmarkSolveGA' -benchtime=20x -run='^$$' ./internal/moo

# Performance trajectory: the sim benches (materialized 20k-job engine,
# the 1M-job streaming-ingestion bench with its peak-live-heap ceiling,
# and the frozen pre-rework reference) plus the window-solver benches
# (MOGA BenchmarkSolveGA; LP BenchmarkSolveLP cold and warm-started vs
# BenchmarkSolveGAWindow on 64/128-job windows; the racing
# BenchmarkSolvePortfolio, capped at 20 iterations since each solve waits
# out its slowest member); write/refresh the committed BENCH_sim.json
# baseline from their combined output. The stream-1M bench runs once
# (-benchtime=1x): one iteration already replays a million jobs.
# -require fails the parse if any bench silently dropped out (e.g. its
# package failed to build inside the { ...; } pipeline, whose exit
# status is the last command's).
BENCH_REQUIRE = BenchmarkSimThroughput/materialized,BenchmarkSimThroughput/stream-1M,BenchmarkSolveGA/,BenchmarkSolveLP/,BenchmarkSolveLP/warm/,BenchmarkSolveLP/w=1024/,BenchmarkSolveLP/w=2048/,BenchmarkSolveLP/w=4096/,BenchmarkSolveLP/w=8192/,BenchmarkSolveLP/warm/w=1024/,BenchmarkSolveLP/warm/w=8192/,BenchmarkSolveGAWindow/,BenchmarkSolvePortfolio/,BenchmarkCheckpoint/,BenchmarkFarm/

bench-json:
	{ $(GO) test -bench '^BenchmarkSimThroughput(Reference)?$$/^materialized-20k$$' -benchtime=3x -run '^$$' ./internal/sim ; \
	  $(GO) test -bench '^BenchmarkSimThroughput$$/^stream-1M$$' -benchtime=1x -run '^$$' ./internal/sim ; \
	  $(GO) test -bench '^BenchmarkCheckpoint$$' -benchtime=10x -run '^$$' ./internal/sim ; \
	  $(GO) test -bench '^BenchmarkSolveGA$$' -benchtime=20x -run '^$$' ./internal/moo ; \
	  $(GO) test -bench '^BenchmarkSolve(LP|GAWindow)$$' -benchtime=5s -run '^$$' ./internal/lp ; \
	  $(GO) test -bench '^BenchmarkSolvePortfolio$$' -benchtime=20x -run '^$$' ./internal/lp ; \
	  $(GO) test -bench '^BenchmarkFarm$$' -benchtime=3x -run '^$$' ./internal/farm ; } | \
		$(GO) run ./cmd/benchjson -out BENCH_sim.json -require '$(BENCH_REQUIRE)'

# Regression gate: re-run the benches and fail if a rate metric
# (jobs/sec, solves/sec) drops >20%, an allocation metric (allocs/event,
# allocs/op) grows >20%, or the streaming engine's memory ceiling
# (peak-B from stream-1M) grows >20% vs the committed baseline. The
# nightly CI job runs this.
bench-check:
	{ $(GO) test -bench '^BenchmarkSimThroughput$$/^materialized-20k$$' -benchtime=3x -run '^$$' ./internal/sim ; \
	  $(GO) test -bench '^BenchmarkSimThroughput$$/^stream-1M$$' -benchtime=1x -run '^$$' ./internal/sim ; \
	  $(GO) test -bench '^BenchmarkCheckpoint$$' -benchtime=10x -run '^$$' ./internal/sim ; \
	  $(GO) test -bench '^BenchmarkSolveGA$$' -benchtime=20x -run '^$$' ./internal/moo ; \
	  $(GO) test -bench '^BenchmarkSolve(LP|GAWindow)$$' -benchtime=5s -run '^$$' ./internal/lp ; \
	  $(GO) test -bench '^BenchmarkSolvePortfolio$$' -benchtime=20x -run '^$$' ./internal/lp ; \
	  $(GO) test -bench '^BenchmarkFarm$$' -benchtime=3x -run '^$$' ./internal/farm ; } | \
		$(GO) run ./cmd/benchjson -check BENCH_sim.json -max-regress 0.20 -require '$(BENCH_REQUIRE)'

# Guard the parallel RunSweep driver against races and nondeterminism:
# tiny method × seed grids (2 × 2) under -race, parallel vs serial.
sweep-smoke:
	$(GO) test -race -run '^TestRunSweep|^TestFacadeEngineSweepRegistry$$' ./internal/sim .

# Distributed-farm smoke under -race: an in-process coordinator, three
# HTTP workers, and two injected crashes (one pre-checkpoint, one
# post-checkpoint) must still assemble a grid identical to serial
# RunSweep — now also covering speculative duplicate leases
# (first-result-wins), checkpoint-relay segment assembly, journal
# crash/replay, and content-addressed cache hits; plus the checkpoint
# golden-equivalence and version-skew tests.
farm-smoke:
	$(GO) test -race -short -run '^TestFarm|^TestRecipeKey$$' ./internal/farm
	$(GO) test -race -short -run '^TestGoldenCheckpointEquivalence$$|^TestCheckpointRoundTrip' ./internal/sim
	$(GO) test -race -run '^TestDecodeVersionSkew$$|^TestEncodeDecodeRoundTrip$$' ./internal/checkpoint

# Fuzz the trace parsers for 30s per target (CI smoke; seed corpora under
# internal/trace/testdata/fuzz run in every plain `go test` too).
fuzz-smoke:
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzParseCSV$$' -fuzztime 30s
	$(GO) test ./internal/trace -run '^$$' -fuzz '^FuzzParseSWF$$' -fuzztime 30s

# Coverage gate: internal/cluster + internal/sched + internal/lp +
# internal/solver statement coverage must not drop below the floor
# (cluster/sched floor captured with the N-dimension harness; lp joined
# with the solver refactor at 95%+ package coverage; solver joined with
# the zoo — greedy, portfolio, memory).
COVER_FLOOR = 75.0
cover-gate:
	$(GO) test -short -coverprofile=cover.out ./internal/cluster ./internal/sched ./internal/lp ./internal/solver
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
	echo "cluster+sched+lp+solver coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t + 0 < f + 0) ? 1 : 0 }' || \
	  { echo "FAIL: coverage fell below the $(COVER_FLOOR)% floor"; exit 1; }

lint: fmt vet

# staticcheck is optional locally (CI installs it); skip with a hint when
# the binary is absent.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not found; install with: go install honnef.co/go/tools/cmd/staticcheck@latest"; \
	fi

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

clean:
	$(GO) clean -testcache
